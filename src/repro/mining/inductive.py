"""Inductive-miner-style discovery of process trees from event logs.

Implements the directly-follows variant of the inductive miner (IMd,
Leemans et al.): recursively partition the event classes by the four
standard cuts of the directly-follows graph and emit the corresponding
process-tree operator —

* **xor cut** — the undirected DFG is disconnected: each weakly
  connected component becomes a choice branch;
* **sequence cut** — the condensation of the DFG into strongly
  connected components admits a reachability-layered ordering: each
  layer becomes a sequence child;
* **parallel cut** — the classes split into parts with directly-follows
  edges in *both* directions across every part pair, each part touching
  a start and an end class;
* **loop cut** — a body containing all start/end classes plus redo
  parts whose edges only re-enter the body.

When no cut applies, the *flower fallthrough* (a loop over the choice
of all remaining classes) keeps discovery total.  The result is a
:class:`repro.datasets.process_tree.ProcessTree` — the same formalism
the synthetic-log generator plays out, which makes rediscovery
round-trips directly testable.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.datasets.process_tree import ProcessTree, leaf, loop, par, seq, xor
from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.events import EventLog
from repro.exceptions import DiscoveryError


def _sub_dfg(dfg: DirectlyFollowsGraph, classes: frozenset[str]) -> DirectlyFollowsGraph:
    """Restrict a DFG to ``classes``; boundary edges define start/end."""
    edge_counts = {
        (a, b): count
        for (a, b), count in dfg.edge_counts.items()
        if a in classes and b in classes
    }
    start_counts = {cls: count for cls, count in dfg.start_counts.items() if cls in classes}
    end_counts = {cls: count for cls, count in dfg.end_counts.items() if cls in classes}
    # Classes entered from outside behave as starts of the fragment,
    # classes leaving to outside as ends.
    for (a, b), count in dfg.edge_counts.items():
        if b in classes and a not in classes:
            start_counts[b] = start_counts.get(b, 0) + count
        if a in classes and b not in classes:
            end_counts[a] = end_counts.get(a, 0) + count
    if not start_counts:
        start_counts = {cls: 1 for cls in classes}
    if not end_counts:
        end_counts = {cls: 1 for cls in classes}
    return DirectlyFollowsGraph(
        nodes=classes,
        edge_counts=edge_counts,
        start_counts=start_counts,
        end_counts=end_counts,
    )


def _xor_cut(dfg: DirectlyFollowsGraph) -> list[frozenset[str]] | None:
    graph = nx.Graph()
    graph.add_nodes_from(dfg.nodes)
    graph.add_edges_from(dfg.edge_counts)
    components = sorted(
        (frozenset(c) for c in nx.connected_components(graph)),
        key=lambda part: sorted(part),
    )
    return components if len(components) > 1 else None


def _sequence_cut(dfg: DirectlyFollowsGraph) -> list[frozenset[str]] | None:
    digraph = nx.DiGraph()
    digraph.add_nodes_from(dfg.nodes)
    digraph.add_edges_from(dfg.edge_counts)
    condensation = nx.condensation(digraph)
    if condensation.number_of_nodes() < 2:
        return None
    # Layer SCCs by longest-path depth in the (acyclic) condensation;
    # merge incomparable SCCs into the same layer.
    order = list(nx.topological_sort(condensation))
    depth: dict[int, int] = {}
    for node in order:
        predecessors = list(condensation.predecessors(node))
        depth[node] = 1 + max((depth[p] for p in predecessors), default=-1)
    layers: dict[int, set[str]] = {}
    for node, node_depth in depth.items():
        layers.setdefault(node_depth, set()).update(
            condensation.nodes[node]["members"]
        )
    if len(layers) < 2:
        return None
    ordered = [frozenset(layers[key]) for key in sorted(layers)]
    # A valid sequence cut requires no backward edges across layers.
    position = {cls: index for index, part in enumerate(ordered) for cls in part}
    for a, b in dfg.edge_counts:
        if position[a] > position[b]:
            return None
    return ordered


def _parallel_cut(dfg: DirectlyFollowsGraph) -> list[frozenset[str]] | None:
    # Build the graph of "not fully mutual" pairs; its connected
    # components are the candidate parallel parts.
    graph = nx.Graph()
    graph.add_nodes_from(dfg.nodes)
    for a, b in itertools.combinations(sorted(dfg.nodes), 2):
        mutual = dfg.has_edge(a, b) and dfg.has_edge(b, a)
        if not mutual:
            graph.add_edge(a, b)
    parts = sorted(
        (frozenset(c) for c in nx.connected_components(graph)),
        key=lambda part: sorted(part),
    )
    if len(parts) < 2:
        return None
    starts, ends = set(dfg.start_counts), set(dfg.end_counts)
    for part in parts:
        if not (part & starts) or not (part & ends):
            return None
    return parts


def _loop_cut(dfg: DirectlyFollowsGraph) -> list[frozenset[str]] | None:
    starts, ends = set(dfg.start_counts), set(dfg.end_counts)
    body_seed = starts | ends
    if body_seed == set(dfg.nodes):
        return None
    redo = frozenset(set(dfg.nodes) - body_seed)
    body = frozenset(body_seed)
    # Redo parts may only connect from body ends and back to body starts.
    for a, b in dfg.edge_counts:
        if a in body and b in redo and a not in ends:
            return None
        if a in redo and b in body and b not in starts:
            return None
    if not redo:
        return None
    return [body, redo]


def inductive_miner(log: EventLog) -> ProcessTree:
    """Discover a process tree from ``log`` (IMd-style)."""
    if len(log) == 0:
        raise DiscoveryError("cannot discover a tree from an empty log")
    return _discover(compute_dfg(log))


def _flower(classes: frozenset[str]) -> ProcessTree:
    """The fallthrough: any sequence over the classes (loop of choices)."""
    ordered = sorted(classes)
    if len(ordered) == 1:
        return loop(leaf(ordered[0]), leaf(ordered[0]))
    choice = xor(*[leaf(cls) for cls in ordered])
    return loop(choice, xor(*[leaf(cls) for cls in ordered]))


def _discover(dfg: DirectlyFollowsGraph) -> ProcessTree:
    classes = dfg.nodes
    if len(classes) == 1:
        only = next(iter(classes))
        if dfg.has_edge(only, only):
            return loop(leaf(only), leaf(only))
        return leaf(only)

    cut = _xor_cut(dfg)
    if cut:
        return xor(*[_discover(_sub_dfg(dfg, part)) for part in cut])
    cut = _sequence_cut(dfg)
    if cut:
        return seq(*[_discover(_sub_dfg(dfg, part)) for part in cut])
    cut = _parallel_cut(dfg)
    if cut:
        return par(*[_discover(_sub_dfg(dfg, part)) for part in cut])
    cut = _loop_cut(dfg)
    if cut:
        body, redo = cut
        return loop(_discover(_sub_dfg(dfg, body)), _discover(_sub_dfg(dfg, redo)))
    return _flower(classes)


def tree_size(tree: ProcessTree) -> int:
    """Number of nodes in a process tree (structuredness ingredient)."""
    if tree.is_leaf:
        return 1
    return 1 + sum(tree_size(child) for child in tree.children)
