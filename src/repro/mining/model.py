"""Process models discovered from event logs.

The evaluation's complexity-reduction measure (C.red) applies an
established control-flow-complexity metric to models discovered from
the original and the abstracted log.  This module defines the model
representation those metrics consume: activities connected by edges,
with *split behaviors* attached to activities that have several
outgoing edges (exclusive, parallel, or inclusive choice).

The representation is deliberately gateway-light: for complexity
measurement only the branching structure matters, so splits/joins are
annotations on activities rather than separate BPMN gateway nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SplitKind(enum.Enum):
    """Branching semantics of an activity's outgoing edges."""

    XOR = "xor"   # exclusive choice
    AND = "and"   # parallel split
    OR = "or"     # inclusive choice (mixed exclusive/parallel successors)
    NONE = "none"  # at most one outgoing edge


@dataclass
class ProcessModel:
    """A discovered process model.

    Attributes
    ----------
    activities:
        Activity labels (the event classes of the mined log).
    edges:
        Directed control-flow edges with frequencies.
    splits / joins:
        Split/join kind per activity (``NONE`` when degree <= 1).
    start_activities / end_activities:
        Entry and exit activities of the model.
    concurrency:
        Unordered activity pairs classified as concurrent.
    """

    activities: frozenset[str]
    edges: dict[tuple[str, str], int] = field(default_factory=dict)
    splits: dict[str, SplitKind] = field(default_factory=dict)
    joins: dict[str, SplitKind] = field(default_factory=dict)
    start_activities: frozenset[str] = frozenset()
    end_activities: frozenset[str] = frozenset()
    concurrency: frozenset[frozenset[str]] = frozenset()

    def successors(self, activity: str) -> frozenset[str]:
        """Activities reachable from ``activity`` in one step."""
        return frozenset(b for (a, b) in self.edges if a == activity)

    def predecessors(self, activity: str) -> frozenset[str]:
        """Activities that reach ``activity`` in one step."""
        return frozenset(a for (a, b) in self.edges if b == activity)

    def split_of(self, activity: str) -> SplitKind:
        """The split kind at ``activity`` (``NONE`` when absent)."""
        return self.splits.get(activity, SplitKind.NONE)

    def is_concurrent(self, activity_a: str, activity_b: str) -> bool:
        """Whether two activities were classified as concurrent."""
        return frozenset({activity_a, activity_b}) in self.concurrency

    @property
    def num_gateways(self) -> int:
        """Number of non-trivial splits and joins (size ingredient)."""
        return sum(
            1 for kind in self.splits.values() if kind is not SplitKind.NONE
        ) + sum(1 for kind in self.joins.values() if kind is not SplitKind.NONE)

    @property
    def size(self) -> int:
        """Model size: activities plus non-trivial gateways.

        Model size strongly correlates with understandability
        (Reijers & Mendling), which is why the paper uses size
        reduction as its most direct abstraction measure.
        """
        return len(self.activities) + self.num_gateways

    def __repr__(self) -> str:
        return (
            f"ProcessModel({len(self.activities)} activities, "
            f"{len(self.edges)} edges, {self.num_gateways} gateways)"
        )
