"""Unit tests for directly-follows graphs."""

import pytest

from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import log_from_variants


@pytest.fixture
def simple_dfg():
    return compute_dfg(log_from_variants([["a", "b", "c"], ["a", "c"], ["a", "b", "c"]]))


class TestComputeDfg:
    def test_nodes_cover_all_classes(self, simple_dfg):
        assert simple_dfg.nodes == frozenset({"a", "b", "c"})

    def test_edge_counts(self, simple_dfg):
        assert simple_dfg.frequency("a", "b") == 2
        assert simple_dfg.frequency("b", "c") == 2
        assert simple_dfg.frequency("a", "c") == 1
        assert simple_dfg.frequency("c", "a") == 0

    def test_start_end_counts(self, simple_dfg):
        assert simple_dfg.start_counts == {"a": 3}
        assert simple_dfg.end_counts == {"c": 3}

    def test_has_edge(self, simple_dfg):
        assert simple_dfg.has_edge("a", "b")
        assert not simple_dfg.has_edge("b", "a")

    def test_successors_predecessors(self, simple_dfg):
        assert simple_dfg.successors("a") == frozenset({"b", "c"})
        assert simple_dfg.predecessors("c") == frozenset({"a", "b"})

    def test_single_event_traces_have_no_edges(self):
        dfg = compute_dfg(log_from_variants([["a"]]))
        assert dfg.nodes == frozenset({"a"})
        assert not dfg.edge_counts

    def test_running_example_matches_paper_fig2(self, running_log):
        dfg = compute_dfg(running_log)
        # Fig. 2 edges (spot checks).
        assert dfg.has_edge("rcp", "ckc")
        assert dfg.has_edge("rcp", "ckt")
        assert dfg.has_edge("ckc", "acc")
        assert dfg.has_edge("ckt", "rej")
        assert dfg.has_edge("rej", "rcp")  # the loop back
        assert not dfg.has_edge("acc", "rej")
        assert not dfg.has_edge("ckc", "ckt")


class TestGroupNeighborhoods:
    def test_pre_post_exclude_members(self, running_log):
        dfg = compute_dfg(running_log)
        group = frozenset({"rcp", "ckc", "ckt"})
        assert dfg.pre(group) == frozenset({"rej"})
        assert dfg.post(group) == frozenset({"acc", "rej"})

    def test_exclusive_pairs(self, running_log):
        dfg = compute_dfg(running_log)
        assert dfg.exclusive({"ckc"}, {"ckt"})
        assert not dfg.exclusive({"rcp"}, {"ckc"})

    def test_exclusive_rejects_overlap(self, running_log):
        dfg = compute_dfg(running_log)
        assert not dfg.exclusive({"ckc", "rcp"}, {"rcp"})

    def test_equal_pre_post_finds_alternatives(self, running_log):
        dfg = compute_dfg(running_log)
        candidates = [frozenset({cls}) for cls in running_log.classes]
        matches = dfg.equal_pre_post(frozenset({"ckc"}), candidates)
        assert matches == [frozenset({"ckt"})]

    def test_acc_rej_not_alternatives(self, running_log):
        # Fig. 6: acc and rej have different postsets (rej loops back).
        dfg = compute_dfg(running_log)
        candidates = [frozenset({cls}) for cls in running_log.classes]
        assert frozenset({"rej"}) not in dfg.equal_pre_post(
            frozenset({"acc"}), candidates
        )


class TestFiltered:
    def test_keeps_most_frequent_edges(self):
        log = log_from_variants({("a", "b"): 9, ("a", "c"): 1})
        dfg = compute_dfg(log)
        filtered = dfg.filtered(0.5)
        assert filtered.has_edge("a", "b")
        assert not filtered.has_edge("a", "c")

    def test_keep_all(self, simple_dfg):
        assert simple_dfg.filtered(1.0).edge_counts == simple_dfg.edge_counts

    def test_invalid_fraction(self, simple_dfg):
        with pytest.raises(ValueError):
            simple_dfg.filtered(0.0)
        with pytest.raises(ValueError):
            simple_dfg.filtered(1.5)

    def test_nodes_preserved(self, simple_dfg):
        assert simple_dfg.filtered(0.3).nodes == simple_dfg.nodes
