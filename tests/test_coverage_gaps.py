"""Small behaviors not covered elsewhere: reprs, dumps, edge paths."""

import io

import pytest

from repro.core.grouping import Grouping
from repro.eventlog import xes
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import Event, EventLog, Trace, log_from_variants
from repro.mip.model import BinaryProgram, LinearConstraint, LE
from repro.mip.result import SolverResult, SolverStatus


class TestReprs:
    def test_event_log_repr(self):
        log = log_from_variants([["a", "b"]])
        text = repr(log)
        assert "1 traces" in text and "2 events" in text

    def test_trace_repr_truncates(self):
        trace = Trace([Event(f"c{i}") for i in range(12)])
        assert "..." in repr(trace)

    def test_dfg_repr(self, running_log):
        assert "8 nodes" in repr(compute_dfg(running_log))

    def test_grouping_repr(self):
        grouping = Grouping([{"a"}, {"b"}], {"a", "b"})
        assert "{a}" in repr(grouping)

    def test_program_repr(self):
        program = BinaryProgram()
        program.add_variable("x")
        assert "1 variables" in repr(program)


class TestXesDumpTargets:
    def test_dump_to_text_handle(self, running_log):
        buffer = io.StringIO()
        xes.dump(running_log, buffer)
        assert buffer.getvalue().startswith("<?xml")

    def test_dump_to_binary_handle(self, running_log, tmp_path):
        path = tmp_path / "log.xes"
        with open(path, "wb") as handle:
            xes.dump(running_log, handle)
        assert xes.load(path).classes == running_log.classes


class TestLinearConstraintEvaluation:
    def test_le_boundary(self):
        constraint = LinearConstraint((("x", 1.0),), LE, 1.0)
        assert constraint.evaluate({"x": 1})
        assert constraint.evaluate({"x": 0})

    def test_missing_variables_default_zero(self):
        constraint = LinearConstraint((("x", 1.0), ("y", 2.0)), LE, 1.0)
        assert constraint.evaluate({"x": 1})


class TestSolverResultHelpers:
    def test_selected_empty_when_no_values(self):
        result = SolverResult(SolverStatus.INFEASIBLE)
        assert result.selected() == []
        assert not result.is_optimal

    def test_selected_lists_ones(self):
        result = SolverResult(
            SolverStatus.OPTIMAL, objective=1.0, values={"a": 1, "b": 0}
        )
        assert result.selected() == ["a"]


class TestEmptyLogBehaviors:
    def test_empty_log_classes(self):
        log = EventLog([])
        assert log.classes == frozenset()
        assert log.event_count == 0

    def test_dfg_of_empty_log(self):
        dfg = compute_dfg(EventLog([]))
        assert not dfg.nodes
        assert not dfg.edge_counts
