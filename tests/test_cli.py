"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets import running_example_log
from repro.eventlog import csv_io, xes


@pytest.fixture
def xes_path(tmp_path):
    path = tmp_path / "log.xes"
    xes.dump(running_example_log(), path)
    return str(path)


@pytest.fixture
def constraints_path(tmp_path):
    path = tmp_path / "constraints.json"
    path.write_text(
        json.dumps(
            [{"type": "max_distinct_class_attribute", "key": "org:role", "bound": 1}]
        )
    )
    return str(path)


class TestAbstract:
    def test_abstract_to_xes(self, xes_path, constraints_path, tmp_path, capsys):
        out = str(tmp_path / "abstracted.xes")
        code = main(
            ["abstract", xes_path, "--constraints", constraints_path, "--output", out]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "grouping (4 groups" in captured.out
        abstracted = xes.load(out)
        assert len(abstracted) == 4

    def test_abstract_to_csv(self, xes_path, constraints_path, tmp_path):
        out = str(tmp_path / "abstracted.csv")
        assert main(
            ["abstract", xes_path, "--constraints", constraints_path, "--output", out]
        ) == 0
        assert len(csv_io.read_csv(out)) == 4

    def test_infeasible_exit_code(self, xes_path, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(
            json.dumps(
                [{"type": "min_instance_aggregate", "key": "duration",
                  "how": "sum", "threshold": 1e12}]
            )
        )
        code = main(["abstract", xes_path, "--constraints", str(spec)])
        assert code == 2
        assert "INFEASIBLE" in capsys.readouterr().err

    def test_beam_width_option(self, xes_path, constraints_path):
        assert main(
            ["abstract", xes_path, "--constraints", constraints_path,
             "--beam-width", "auto"]
        ) == 0
        assert main(
            ["abstract", xes_path, "--constraints", constraints_path,
             "--beam-width", "10"]
        ) == 0

    def test_unsupported_format(self, constraints_path, tmp_path, capsys):
        bogus = tmp_path / "log.txt"
        bogus.write_text("hi")
        code = main(["abstract", str(bogus), "--constraints", constraints_path])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestOtherCommands:
    def test_stats(self, xes_path, capsys):
        assert main(["stats", xes_path]) == 0
        out = capsys.readouterr().out
        assert "|CL|: 8" in out
        assert "Traces: 4" in out

    def test_dfg(self, xes_path, capsys):
        assert main(["dfg", xes_path]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_dfg_filtered(self, xes_path, capsys):
        assert main(["dfg", xes_path, "--keep", "0.5"]) == 0

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "3.083" in out

    def test_constraint_types(self, capsys):
        assert main(["constraint-types"]) == 0
        assert "max_group_size" in capsys.readouterr().out

    def test_discover_dfg(self, xes_path, capsys):
        assert main(["discover", xes_path]) == 0
        out = capsys.readouterr().out
        assert "CFC" in out

    def test_discover_alpha(self, xes_path, capsys):
        assert main(["discover", xes_path, "--algorithm", "alpha"]) == 0
        assert "fitness" in capsys.readouterr().out

    def test_discover_alpha_dot(self, xes_path, capsys):
        assert main(["discover", xes_path, "--algorithm", "alpha", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_discover_inductive(self, xes_path, capsys):
        assert main(["discover", xes_path, "--algorithm", "inductive"]) == 0
        assert "process tree" in capsys.readouterr().out

    def test_suggest(self, xes_path, capsys):
        assert main(["suggest", xes_path]) == 0
        out = capsys.readouterr().out
        assert "org:role" in out

    def test_suggest_limit(self, xes_path, capsys):
        assert main(["suggest", xes_path, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        # Header plus exactly one suggestion line.
        assert len(out.strip().splitlines()) == 2
