"""Property-based tests for the mining substrate."""

from hypothesis import given, settings, strategies as st

from repro.datasets.playout import playout
from repro.datasets.process_tree import TreeSpec, random_tree
from repro.eventlog.events import log_from_variants
from repro.mining.complexity import control_flow_complexity
from repro.mining.discovery import DiscoveryParameters, discover_model
from repro.mining.inductive import inductive_miner, tree_size

CLASSES = ["a", "b", "c", "d"]

variant_strategy = st.lists(st.sampled_from(CLASSES), min_size=1, max_size=6)
log_strategy = st.lists(variant_strategy, min_size=1, max_size=8).map(
    log_from_variants
)


@given(log=log_strategy)
@settings(max_examples=40, deadline=None)
def test_inductive_tree_covers_exactly_log_classes(log):
    tree = inductive_miner(log)
    assert set(tree.leaves()) == set(log.classes)


@given(log=log_strategy)
@settings(max_examples=40, deadline=None)
def test_inductive_tree_size_bounded(log):
    tree = inductive_miner(log)
    # Leaves may repeat only in the flower/self-loop fallthroughs, which
    # at most double them; operators are fewer than leaf slots.
    assert tree_size(tree) <= 4 * len(log.classes) + 3


@given(log=log_strategy)
@settings(max_examples=30, deadline=None)
def test_discovery_deterministic(log):
    model_a = discover_model(log)
    model_b = discover_model(log)
    assert model_a.edges == model_b.edges
    assert model_a.splits == model_b.splits


@given(log=log_strategy)
@settings(max_examples=30, deadline=None)
def test_cfc_non_negative_and_bounded_by_edges(log):
    model = discover_model(log, DiscoveryParameters(epsilon=0.3))
    cfc = control_flow_complexity(model)
    assert cfc >= 0
    # XOR contributes branches, OR at most 2^branches - 1 (capped):
    # all bounded by a function of the edge count; sanity ceiling.
    assert cfc <= (1 << 16) * max(1, len(model.edges))


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=25, deadline=None)
def test_random_tree_playout_rediscovery_covers_leaves(seed):
    tree = random_tree(TreeSpec(num_activities=6), seed=seed)
    log = playout(tree, 30, seed=seed)
    rediscovered = inductive_miner(log)
    # Play-out may not visit rare XOR branches, so coverage is one-way.
    assert set(rediscovered.leaves()) <= set(tree.leaves())
    assert set(rediscovered.leaves()) == set(log.classes)
