"""Unit tests for noise injection and experiment-report persistence."""

import io

import pytest

from repro.datasets.noise import (
    apply_noise,
    drop_noise,
    duplicate_noise,
    insert_noise,
    swap_noise,
)
from repro.eventlog.events import log_from_variants
from repro.exceptions import EventLogError, ReproError
from repro.experiments.persistence import (
    export_csv,
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)
from repro.experiments.runner import ExperimentReport, ProblemResult


@pytest.fixture
def clean_log():
    return log_from_variants([["a", "b", "c", "d"]] * 20)


class TestNoiseOperators:
    def test_rate_validation(self, clean_log):
        for operator in (swap_noise, drop_noise, duplicate_noise, insert_noise):
            with pytest.raises(EventLogError):
                operator(clean_log, 1.5)

    def test_zero_rate_is_identity(self, clean_log):
        for operator in (swap_noise, drop_noise, duplicate_noise, insert_noise):
            noisy = operator(clean_log, 0.0)
            assert [t.variant() for t in noisy] == [t.variant() for t in clean_log]

    def test_swap_preserves_multiset(self, clean_log):
        noisy = swap_noise(clean_log, 0.5, seed=3)
        for original, corrupted in zip(clean_log, noisy):
            assert sorted(corrupted.classes) == sorted(original.classes)
        assert any(
            corrupted.variant() != original.variant()
            for original, corrupted in zip(clean_log, noisy)
        )

    def test_drop_shrinks_but_never_empties(self, clean_log):
        noisy = drop_noise(clean_log, 0.9, seed=3)
        assert noisy.event_count < clean_log.event_count
        assert all(len(trace) >= 1 for trace in noisy)

    def test_duplicate_grows(self, clean_log):
        noisy = duplicate_noise(clean_log, 0.5, seed=3)
        assert noisy.event_count > clean_log.event_count
        # Duplicates are adjacent copies of existing classes.
        assert noisy.classes == clean_log.classes

    def test_insert_only_existing_classes(self, clean_log):
        noisy = insert_noise(clean_log, 0.5, seed=3)
        assert noisy.classes == clean_log.classes
        assert noisy.event_count > clean_log.event_count

    def test_deterministic_per_seed(self, clean_log):
        noisy_a = apply_noise(clean_log, swap=0.3, drop=0.1, seed=9)
        noisy_b = apply_noise(clean_log, swap=0.3, drop=0.1, seed=9)
        assert [t.variant() for t in noisy_a] == [t.variant() for t in noisy_b]
        noisy_c = apply_noise(clean_log, swap=0.3, drop=0.1, seed=10)
        assert [t.variant() for t in noisy_a] != [t.variant() for t in noisy_c]

    def test_inputs_never_mutated(self, clean_log):
        before = [t.variant() for t in clean_log]
        apply_noise(clean_log, swap=0.5, drop=0.5, duplicate=0.5, insert=0.5)
        assert [t.variant() for t in clean_log] == before

    def test_abstraction_survives_moderate_noise(self, running_log, role_constraints):
        """Robustness: GECCO still solves the noisy running example."""
        from repro.core.gecco import Gecco, GeccoConfig

        noisy = apply_noise(running_log, swap=0.15, duplicate=0.1, seed=2)
        result = Gecco(role_constraints, GeccoConfig(strategy="dfg")).abstract(noisy)
        assert result.feasible


class TestPersistence:
    @pytest.fixture
    def report(self):
        return ExperimentReport(
            rows=[
                ProblemResult("sepsis", "A", "Exh", True, 0.5, 0.4, 0.1, 1.25, 4, 77),
                ProblemResult("wabo", "M", "DFGk", False, error="timeout"),
            ]
        )

    def test_json_roundtrip(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, path)
        recovered = load_report(path)
        assert recovered.rows == report.rows

    def test_json_roundtrip_via_handle(self, report):
        buffer = io.StringIO()
        save_report(report, buffer)
        buffer.seek(0)
        assert load_report(buffer).rows == report.rows

    def test_dict_validation(self):
        with pytest.raises(ReproError):
            report_from_dict({})
        with pytest.raises(ReproError):
            report_from_dict({"rows": [{"bogus_field": 1}]})

    def test_csv_export(self, report, tmp_path):
        path = tmp_path / "report.csv"
        export_csv(report, path)
        text = path.read_text()
        assert "sepsis" in text
        assert text.splitlines()[0].startswith("log_name,")
        assert len(text.strip().splitlines()) == 3

    def test_to_dict_shape(self, report):
        data = report_to_dict(report)
        assert len(data["rows"]) == 2
        assert data["rows"][0]["approach"] == "Exh"
