"""Unit tests for XES import/export."""

from datetime import datetime, timezone

import pytest

from repro.eventlog import xes
from repro.eventlog.events import Event, EventLog, Trace
from repro.exceptions import XESParseError

SAMPLE = """<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0">
  <string key="concept:name" value="sample"/>
  <trace>
    <string key="concept:name" value="case_1"/>
    <event>
      <string key="concept:name" value="register"/>
      <string key="org:role" value="clerk"/>
      <int key="items" value="3"/>
      <float key="cost" value="12.5"/>
      <boolean key="rush" value="true"/>
      <date key="time:timestamp" value="2021-06-01T09:00:00+00:00"/>
    </event>
    <event>
      <string key="concept:name" value="ship"/>
      <date key="time:timestamp" value="2021-06-01T10:00:00Z"/>
    </event>
  </trace>
</log>
"""


class TestLoads:
    def test_parses_structure(self):
        log = xes.loads(SAMPLE)
        assert len(log) == 1
        assert log.attributes["concept:name"] == "sample"
        assert log[0].case_id == "case_1"
        assert log[0].classes == ["register", "ship"]

    def test_value_types(self):
        event = xes.loads(SAMPLE)[0][0]
        assert event["org:role"] == "clerk"
        assert event["items"] == 3
        assert event["cost"] == 12.5
        assert event["rush"] is True
        assert event.timestamp == datetime(2021, 6, 1, 9, tzinfo=timezone.utc)

    def test_z_suffix_timestamp(self):
        event = xes.loads(SAMPLE)[0][1]
        assert event.timestamp == datetime(2021, 6, 1, 10, tzinfo=timezone.utc)

    def test_rejects_bad_xml(self):
        with pytest.raises(XESParseError):
            xes.loads("<log><trace>")

    def test_rejects_wrong_root(self):
        with pytest.raises(XESParseError):
            xes.loads("<notalog/>")

    def test_rejects_event_without_class(self):
        doc = '<log><trace><event><string key="x" value="y"/></event></trace></log>'
        with pytest.raises(XESParseError):
            xes.loads(doc)

    def test_rejects_bad_int(self):
        doc = '<log><trace><event><string key="concept:name" value="a"/><int key="n" value="zz"/></event></trace></log>'
        with pytest.raises(XESParseError):
            xes.loads(doc)

    def test_rejects_bad_date(self):
        doc = '<log><trace><event><string key="concept:name" value="a"/><date key="time:timestamp" value="yesterday"/></event></trace></log>'
        with pytest.raises(XESParseError):
            xes.loads(doc)

    def test_nested_attributes_flattened(self):
        doc = (
            '<log><trace><event><string key="concept:name" value="a"/>'
            '<string key="outer" value="1"><string key="inner" value="2"/></string>'
            "</event></trace></log>"
        )
        event = xes.loads(doc)[0][0]
        assert event["outer"] == "1"
        assert event["outer:inner"] == "2"

    def test_namespaced_tags_supported(self):
        doc = (
            '<log xmlns="http://www.xes-standard.org/"><trace><event>'
            '<string key="concept:name" value="a"/></event></trace></log>'
        )
        assert xes.loads(doc)[0].classes == ["a"]


class TestRoundtrip:
    def test_roundtrip_preserves_log(self, running_log):
        recovered = xes.loads(xes.dumps(running_log))
        assert len(recovered) == len(running_log)
        for original, parsed in zip(running_log, recovered):
            assert parsed.classes == original.classes
            for event_a, event_b in zip(original, parsed):
                assert event_a.attributes == event_b.attributes

    def test_roundtrip_via_file(self, tmp_path, running_log):
        path = tmp_path / "log.xes"
        xes.dump(running_log, path)
        recovered = xes.load(path)
        assert len(recovered) == len(running_log)
        assert recovered.classes == running_log.classes

    def test_bool_and_numbers_roundtrip(self):
        log = EventLog(
            [Trace([Event("a", {"flag": False, "n": 7, "x": 0.25})])]
        )
        event = xes.loads(xes.dumps(log))[0][0]
        assert event["flag"] is False
        assert event["n"] == 7
        assert event["x"] == 0.25

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(XESParseError):
            xes.load(tmp_path / "missing.xes")
