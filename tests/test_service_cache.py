"""Artifact-cache behavior: hit/miss accounting, LRU, disk store."""

import json
import os
import time

import pytest

from repro.constraints import ConstraintSet, MaxGroupSize
from repro.service import ArtifactCache, LogRef, AbstractionJob, run_job
from repro.service.serialization import result_signature


def job_for(bound: int, log_spec: str = "running_example") -> AbstractionJob:
    return AbstractionJob(
        log=LogRef.builtin(log_spec),
        constraints=ConstraintSet([MaxGroupSize(bound)]),
    )


class TestArtifactTier:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        assert cache.get_artifacts(("d", "repeat", "compiled")) is None
        cache.put_artifacts(("d", "repeat", "compiled"), "bundle")
        assert cache.get_artifacts(("d", "repeat", "compiled")) == "bundle"
        assert cache.stats.artifacts.misses == 1
        assert cache.stats.artifacts.hits == 1
        assert cache.stats.artifacts.stores == 1

    def test_lru_eviction(self):
        cache = ArtifactCache(max_artifacts=1)
        cache.put_artifacts(("a",), 1)
        cache.put_artifacts(("b",), 2)
        assert cache.stats.artifacts.evictions == 1
        assert cache.get_artifacts(("a",)) is None
        assert cache.get_artifacts(("b",)) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_artifacts=0)


class TestResultTier:
    def test_lru_keeps_recently_used(self, running_log):
        cache = ArtifactCache(max_results=2)
        results = {}
        for bound in (3, 4, 5):
            job = job_for(bound)
            results[bound], _ = run_job(job, cache)
            cache.get_result(job_for(3).fingerprint().full)  # keep 3 warm
        # bound=3 was refreshed, bound=4 is the LRU victim.
        assert cache.get_result(job_for(3).fingerprint().full) is not None
        assert cache.get_result(job_for(4).fingerprint().full) is None

    def test_run_job_accounting(self):
        cache = ArtifactCache()
        _, cached_a = run_job(job_for(3), cache)
        _, cached_b = run_job(job_for(4), cache)
        assert (cached_a, cached_b) == (False, False)
        # Two constraint sets on one log: artifacts built exactly once.
        assert cache.stats.artifact_builds == 1
        assert cache.stats.artifacts.hits == 1
        repeat, cached_repeat = run_job(job_for(3), cache)
        assert cached_repeat is True
        assert cache.stats.results.hits == 1

    def test_distinct_logs_build_distinct_artifacts(self):
        cache = ArtifactCache()
        run_job(job_for(5, "running_example"), cache)
        run_job(job_for(5, "loan:10"), cache)
        assert cache.stats.artifact_builds == 2


class TestDiskStore:
    def test_round_trip_through_disk(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        job = job_for(5)
        result, _ = run_job(job, cache)
        fingerprint = job.fingerprint().full

        fresh = ArtifactCache(disk_dir=store)
        loaded = fresh.get_result(fingerprint)
        assert loaded is not None
        assert result_signature(loaded) == result_signature(result)
        assert fresh.stats.disk.hits == 1
        # The memory tier was repopulated: second read is a memory hit.
        fresh.get_result(fingerprint)
        assert fresh.stats.results.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        job = job_for(5)
        run_job(job, cache)
        fingerprint = job.fingerprint().full
        path = next(store.glob("*/*.json"))
        path.write_text("{not json", encoding="utf-8")

        fresh = ArtifactCache(disk_dir=store)
        assert fresh.get_result(fingerprint) is None
        assert fresh.stats.disk.misses == 1
        # The bad entry was dropped, so recomputing repairs the store.
        run_job(job, fresh)
        assert fresh.stats.disk.stores == 1
        repaired = ArtifactCache(disk_dir=store)
        assert repaired.get_result(fingerprint) is not None

    def test_entries_are_valid_json_files(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        run_job(job_for(5), cache)
        path = next(store.glob("*/*.json"))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema"] == "gecco-result/1"

    def test_clear_keeps_disk_by_default(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        job = job_for(5)
        run_job(job, cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.get_result(job.fingerprint().full) is not None  # disk hit
        cache.clear(memory_only=False)
        assert cache.get_result(job.fingerprint().full) is None

    def test_snapshot_shape(self):
        cache = ArtifactCache()
        run_job(job_for(5), cache)
        snap = cache.snapshot()
        assert snap["artifact_builds"] == 1
        assert snap["resident_results"] == 1
        assert {"hits", "misses", "stores", "evictions"} <= set(snap["results"])
        assert {"hits", "misses", "stores", "evictions"} <= set(snap["selection"])


class TestSelectionTier:
    def test_miss_store_hit(self):
        cache = ArtifactCache()
        assert cache.get_selection("k1") is None
        cache.put_selection("k1", "solution")
        assert cache.get_selection("k1") == "solution"
        assert cache.stats.selection.misses == 1
        assert cache.stats.selection.hits == 1

    def test_lru_eviction(self):
        cache = ArtifactCache(max_selections=2)
        cache.put_selection("a", 1)
        cache.put_selection("b", 2)
        cache.get_selection("a")  # refresh: b becomes the LRU victim
        cache.put_selection("c", 3)
        assert cache.stats.selection.evictions == 1
        assert cache.get_selection("b") is None
        assert cache.get_selection("a") == 1

    def test_populated_by_decomposed_jobs(self):
        cache = ArtifactCache()
        run_job(job_for(4), cache)
        assert cache.stats.selection.stores > 0
        assert cache.snapshot()["resident_selections"] > 0


class TestSelectionDiskStore:
    @staticmethod
    def _solution(objective=1.5, status="optimal"):
        from repro.selection2.portfolio import ComponentSolution

        return ComponentSolution(
            status=status,
            groups=(("a", "b"), ("c",)),
            objective=objective,
            nodes=3,
            backend="bnb",
        )

    def test_proved_cells_survive_restart(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        cache.put_selection("ab12", self._solution())
        assert (store / "selection" / "ab" / "ab12.json").exists()

        revived = ArtifactCache(disk_dir=store)
        assert revived.get_selection("ab12") == self._solution()
        assert revived.stats.disk.hits == 1
        # Now resident in memory: a second read never touches disk.
        assert revived.get_selection("ab12") == self._solution()
        assert revived.stats.selection.hits == 1

    def test_timeouts_and_foreign_objects_never_persist(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        cache.put_selection("t1ab", self._solution(status="error"))
        cache.put_selection("t2ab", "not-a-solution")
        assert not list(store.glob("selection/*/*.json"))
        # ... but both still served from the memory tier.
        assert cache.get_selection("t1ab") is not None
        assert cache.get_selection("t2ab") == "not-a-solution"

    def test_ttl_and_corruption_handling(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store, disk_ttl=60.0)
        cache.put_selection("ab12", self._solution())
        _age_disk_entries(store, 120.0)
        revived = ArtifactCache(disk_dir=store, disk_ttl=60.0)
        assert revived.get_selection("ab12") is None
        assert not (store / "selection" / "ab" / "ab12.json").exists()

        cache.put_selection("cd34", self._solution(objective=2.0))
        path = store / "selection" / "cd" / "cd34.json"
        path.write_text("{broken", encoding="utf-8")
        fresh = ArtifactCache(disk_dir=store)
        assert fresh.get_selection("cd34") is None
        assert not path.exists()

    def test_budgets_cover_selection_entries(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store, disk_max_entries=2)
        for index in range(5):
            cache.put_selection(f"k{index}ab", self._solution(float(index)))
        assert len(list(store.glob("selection/*/*.json"))) == 2
        assert cache.stats.disk.evictions == 3

    def test_under_budget_puts_skip_the_enforcement_sweep(self, tmp_path):
        # Decomposed runs store many tiny proved cells; while clearly
        # under budget only the estimate-seeding sweep may glob+stat.
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store, disk_max_entries=1000)
        sweeps = 0
        original = cache._disk_entries

        def counting(tier=None):
            nonlocal sweeps
            sweeps += 1
            yield from original(tier)

        cache._disk_entries = counting
        for index in range(50):
            cache.put_selection(f"k{index:03d}", self._solution(float(index)))
        assert len(list(store.glob("selection/*/*.json"))) == 50
        assert sweeps == 1

    def test_clear_disk_drops_selection_entries(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        cache.put_selection("ab12", self._solution())
        cache.clear(memory_only=False)
        assert not list(store.glob("selection/*/*.json"))

    def test_sweeps_reuse_persisted_cells_across_restarts(self, tmp_path):
        store = tmp_path / "store"
        first = ArtifactCache(disk_dir=store)
        run_job(job_for(4), first)
        persisted = len(list(store.glob("selection/*/*.json")))
        assert persisted > 0

        revived = ArtifactCache(disk_dir=store)
        run_job(job_for(4), revived)
        assert revived.stats.disk.hits >= 1


def _age_disk_entries(store, seconds):
    """Backdate every disk entry's LRU/TTL clock by ``seconds``."""
    stamp = time.time() - seconds
    for pattern in ("*/*.json", "selection/*/*.json"):
        for path in store.glob(pattern):
            os.utime(path, (stamp, stamp))


class TestDiskBudgets:
    def test_ttl_expires_idle_entries(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store, disk_ttl=60.0)
        job = job_for(5)
        run_job(job, cache)
        fingerprint = job.fingerprint().full
        _age_disk_entries(store, 120.0)

        fresh = ArtifactCache(disk_dir=store, disk_ttl=60.0)
        assert fresh.get_result(fingerprint) is None
        assert fresh.stats.disk.misses == 1
        assert fresh.stats.disk.evictions == 1
        assert not list(store.glob("*/*.json"))

    def test_disk_hit_refreshes_ttl_clock(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store, disk_ttl=3600.0)
        job = job_for(5)
        run_job(job, cache)
        _age_disk_entries(store, 1800.0)

        fresh = ArtifactCache(disk_dir=store, disk_ttl=3600.0)
        assert fresh.get_result(job.fingerprint().full) is not None
        path = next(store.glob("*/*.json"))
        assert time.time() - path.stat().st_mtime < 60.0  # clock refreshed

    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store, disk_max_entries=2)
        jobs = [job_for(bound) for bound in (3, 4, 5)]
        for position, job in enumerate(jobs):
            run_job(job, cache)
            # Strictly order the entries' recency clocks.
            path = cache._disk_path(job.fingerprint().full)
            if path.exists():
                stamp = time.time() - (100 - position)
                os.utime(path, (stamp, stamp))
        assert len(list(store.glob("*/*.json"))) == 2
        assert cache.stats.disk.evictions >= 1
        # The oldest entry (bound=3) was the victim.
        fresh = ArtifactCache(disk_dir=store)
        assert fresh.get_result(jobs[0].fingerprint().full) is None
        assert fresh.get_result(jobs[2].fingerprint().full) is not None

    def test_max_bytes_budget(self, tmp_path):
        store = tmp_path / "store"
        unbounded = ArtifactCache(disk_dir=store)
        run_job(job_for(5), unbounded)
        entry_size = next(store.glob("*/*.json")).stat().st_size
        unbounded.clear(memory_only=False)

        cache = ArtifactCache(disk_dir=store, disk_max_bytes=int(entry_size * 1.5))
        for bound in (3, 4, 5):
            run_job(job_for(bound), cache)
        assert len(list(store.glob("*/*.json"))) == 1
        assert cache.stats.disk.evictions == 2

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ArtifactCache(disk_ttl=0)
        with pytest.raises(ValueError):
            ArtifactCache(disk_max_entries=0)
        with pytest.raises(ValueError):
            ArtifactCache(max_selections=0)
