"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute, MaxGroupSize
from repro.datasets import (
    build_log,
    loan_application_log,
    running_example_log,
)
from repro.datasets.collection import TABLE_III_SPECS
from repro.eventlog.events import ROLE_KEY


@pytest.fixture(scope="session")
def running_log():
    """The paper's running example (Table I)."""
    return running_example_log()


@pytest.fixture(scope="session")
def role_constraints():
    """The running example's role constraint (one role per group)."""
    return ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])


@pytest.fixture(scope="session")
def small_synthetic_log():
    """A small seeded synthetic log (16 classes, 40 traces)."""
    spec = next(spec for spec in TABLE_III_SPECS if spec.name == "sepsis")
    return build_log(spec, max_traces=40)


@pytest.fixture(scope="session")
def loan_log():
    """A scaled-down case-study loan log."""
    return loan_application_log(num_traces=80)


@pytest.fixture
def size_cap_constraints():
    """The evaluation's base constraint |g| <= 8."""
    return ConstraintSet([MaxGroupSize(8)])
