"""Unit tests for CSV import/export."""

import io

import pytest

from repro.eventlog import csv_io
from repro.eventlog.events import TIMESTAMP_KEY
from repro.exceptions import EventLogError

CSV_TEXT = """case:concept:name,concept:name,time:timestamp,cost,rush
c1,register,2021-06-01T09:00:00+00:00,12.5,true
c1,ship,2021-06-01T10:00:00+00:00,3,false
c2,register,2021-06-02T09:00:00+00:00,7.25,true
"""


class TestReadCsv:
    def test_groups_rows_into_cases(self):
        log = csv_io.read_csv(io.StringIO(CSV_TEXT))
        assert len(log) == 2
        assert log[0].classes == ["register", "ship"]
        assert log[1].classes == ["register"]

    def test_value_coercion(self):
        log = csv_io.read_csv(io.StringIO(CSV_TEXT))
        event = log[0][0]
        assert event["cost"] == 12.5
        assert event["rush"] is True
        assert event.timestamp is not None

    def test_int_coercion(self):
        log = csv_io.read_csv(io.StringIO(CSV_TEXT))
        assert log[0][1]["cost"] == 3

    def test_sorts_by_timestamp(self):
        shuffled = (
            "case:concept:name,concept:name,time:timestamp\n"
            "c1,second,2021-06-01T10:00:00+00:00\n"
            "c1,first,2021-06-01T09:00:00+00:00\n"
        )
        log = csv_io.read_csv(io.StringIO(shuffled))
        assert log[0].classes == ["first", "second"]

    def test_no_sort_when_disabled(self):
        shuffled = (
            "case:concept:name,concept:name,time:timestamp\n"
            "c1,second,2021-06-01T10:00:00+00:00\n"
            "c1,first,2021-06-01T09:00:00+00:00\n"
        )
        log = csv_io.read_csv(io.StringIO(shuffled), sort_by_timestamp=False)
        assert log[0].classes == ["second", "first"]

    def test_missing_case_column(self):
        with pytest.raises(EventLogError):
            csv_io.read_csv(io.StringIO("concept:name\nregister\n"))

    def test_missing_class_column(self):
        with pytest.raises(EventLogError):
            csv_io.read_csv(io.StringIO("case:concept:name\nc1\n"))

    def test_empty_class_rejected(self):
        text = "case:concept:name,concept:name\nc1,\n"
        with pytest.raises(EventLogError):
            csv_io.read_csv(io.StringIO(text))

    def test_no_header(self):
        with pytest.raises(EventLogError):
            csv_io.read_csv(io.StringIO(""))

    def test_custom_columns(self):
        text = "case,activity\nc1,a\nc1,b\n"
        log = csv_io.read_csv(
            io.StringIO(text), case_column="case", class_column="activity"
        )
        assert log[0].classes == ["a", "b"]


class TestWriteCsv:
    def test_roundtrip(self, running_log):
        recovered = csv_io.csv_roundtrip(running_log)
        assert len(recovered) == len(running_log)
        for original, parsed in zip(running_log, recovered):
            assert parsed.classes == original.classes
            for event_a, event_b in zip(original, parsed):
                assert event_b["org:role"] == event_a["org:role"]
                assert event_b["duration"] == event_a["duration"]
                assert event_b.timestamp == event_a.timestamp

    def test_write_to_path(self, tmp_path, running_log):
        path = tmp_path / "log.csv"
        csv_io.write_csv(running_log, path)
        log = csv_io.read_csv(path)
        assert len(log) == len(running_log)

    def test_timestamp_column_rename(self):
        text = "case:concept:name,concept:name,ts\nc1,a,2021-06-01T09:00:00+00:00\n"
        log = csv_io.read_csv(io.StringIO(text), timestamp_column="ts")
        assert TIMESTAMP_KEY in log[0][0].attributes
