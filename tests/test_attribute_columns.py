"""Differential tests for the columnar attribute engine.

The attribute columns of :mod:`repro.core.columns` promise *identical*
verdicts to the reference event-materialized constraint checking — for
every aggregate, the loose ``AtLeastFraction`` wrappers, missing and
non-numeric attributes, vacuous instances, and timestamp-less logs —
plus byte-identical outputs from the bitmask exhaustive frontier and
the compiled Step-3 abstraction.  This suite checks those promises on
the paper's logs, adversarially constructed attribute patterns, and
hypothesis-generated logs.
"""

import itertools
import random
from datetime import datetime, timezone

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    AtLeastFraction,
    ConstraintSet,
    MaxConsecutiveGap,
    MaxDistinctInstanceAttribute,
    MaxEventsPerClass,
    MaxGroupSize,
    MaxInstanceAggregate,
    MaxInstanceDuration,
    MinDistinctInstanceAttribute,
    MinEventsPerClass,
    MinInstanceAggregate,
    MinInstanceDuration,
)
from repro.core.abstraction import STRATEGIES, abstract_log
from repro.core.candidates import exhaustive_candidates
from repro.core.checker import GroupChecker
from repro.core.encoding import (
    HAVE_NUMPY,
    CompiledInstanceIndex,
    CompiledLog,
)
from repro.core.gecco import Gecco, GeccoConfig
from repro.core.instances import POLICIES, InstanceIndex
from repro.eventlog.events import Event, EventLog, Trace

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def _synthetic_log(num_classes, num_traces, seed=42):
    """An attribute-enriched synthetic log (the scaling workloads' shape)."""
    from repro.datasets.attributes import enrich_log
    from repro.datasets.playout import playout
    from repro.datasets.process_tree import TreeSpec, random_tree

    tree = random_tree(TreeSpec(num_activities=num_classes), seed=seed)
    return enrich_log(playout(tree, num_traces, seed=seed), seed=seed)


def _groups_upto(log, max_size=3, limit=200):
    classes = sorted(log.classes)
    combos = [
        frozenset(combo)
        for size in range(1, max_size + 1)
        for combo in itertools.combinations(classes, size)
    ]
    if len(combos) > limit:
        combos = random.Random(20220731).sample(combos, limit)
    return combos


def _assert_same_verdicts(log, constraints, groups=None, policy="repeat"):
    reference = GroupChecker(log, constraints, InstanceIndex(log, policy=policy))
    compiled = GroupChecker(
        log, constraints, CompiledInstanceIndex(log, policy=policy)
    )
    for group in groups or _groups_upto(log):
        assert reference.holds(group) == compiled.holds(group), sorted(group)
    return compiled


def _attribute_log():
    """A log exercising every awkward attribute pattern at once.

    Missing attributes, non-numeric and bool values under numeric keys,
    NaN/inf values, huge ints, unhashable values, events without
    timestamps, and an exactly-threshold-summing pair.
    """
    t = lambda s: datetime(2022, 5, 10, 12, 0, s, tzinfo=timezone.utc)  # noqa: E731
    return EventLog(
        [
            Trace(
                [
                    Event("a", {"x": 3.5, "time:timestamp": t(0)}),
                    Event("b", {"x": "text"}),  # non-numeric carrier
                    Event("c", {}),  # missing everything
                ]
            ),
            Trace(
                [
                    Event("a", {"x": True, "y": 1}),  # bool is not numeric
                    Event("b", {"x": float("nan"), "time:timestamp": t(5)}),
                    Event("c", {"x": float("inf"), "time:timestamp": t(2)}),
                ]
            ),
            Trace(
                [
                    Event("a", {"x": 0.1, "time:timestamp": t(10)}),
                    Event("b", {"x": 0.2, "time:timestamp": t(10)}),
                    Event("c", {"x": -0.3000000000000000444}),
                ]
            ),
            Trace(
                [
                    Event("a", {"u": [1, 2]}),  # unhashable value
                    Event("b", {"big": 10**400}),  # overflows float()
                    Event("c", {"y": 7}),
                ]
            ),
        ]
    )


class TestKernelParity:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize(
        "constraint",
        [
            MinInstanceAggregate("x", "sum", 0.3),
            MaxInstanceAggregate("x", "sum", 3.5),
            MinInstanceAggregate("x", "avg", 0.15),
            MaxInstanceAggregate("x", "avg", 0.15),
            MinInstanceAggregate("x", "min", 0.1),
            MaxInstanceAggregate("x", "max", 3.5),
            MinInstanceAggregate("x", "count", 1),
            MaxInstanceAggregate("x", "count", 2),
            MinInstanceAggregate("x", "distinct", 1),
            MaxInstanceAggregate("x", "distinct", 2),
            MaxInstanceAggregate("y", "sum", 5.0),
            MaxDistinctInstanceAttribute("x", 2),
            MinDistinctInstanceAttribute("x", 1),
            MaxInstanceDuration(6.0),
            MinInstanceDuration(3.0),
            MaxConsecutiveGap(4.0),
            MaxEventsPerClass(1),
            MinEventsPerClass(1),
            AtLeastFraction(MaxInstanceAggregate("x", "sum", 0.3), 0.5),
            AtLeastFraction(MaxInstanceDuration(3.0), 0.7),
        ],
    )
    def test_awkward_attributes_identical(self, constraint, policy):
        log = _attribute_log()
        _assert_same_verdicts(
            log, ConstraintSet([constraint]), policy=policy
        )

    def test_exact_threshold_sum_falls_back_to_sequential(self):
        # 0.1 + 0.2 sums to 0.30000000000000004; a threshold exactly at
        # the sequential sum must certify via the reference arithmetic.
        log = _attribute_log()
        group = frozenset(["a", "b"])
        threshold = 0.1 + 0.2
        for constraint in (
            MinInstanceAggregate("x", "sum", threshold),
            MaxInstanceAggregate("x", "sum", threshold),
            MinInstanceAggregate("x", "avg", threshold / 2),
        ):
            _assert_same_verdicts(
                log, ConstraintSet([constraint]), groups=[group]
            )

    def test_unhashable_and_overflow_fall_back(self):
        # Groups untouched by the bad values get identical verdicts via
        # the event-materialized fallback; groups carrying them raise
        # the same exception the reference raises.
        log = _attribute_log()
        constraints = ConstraintSet(
            [
                MaxDistinctInstanceAttribute("u", 1),
                MaxInstanceAggregate("big", "max", 1e300),
            ]
        )
        checker = _assert_same_verdicts(
            log, constraints, groups=[frozenset(["c"])]
        )
        assert checker.fallback_checks > 0
        assert checker.kernel_checks == 0
        for group, error in (
            (frozenset(["a"]), TypeError),  # [1, 2] is unhashable
            (frozenset(["b"]), OverflowError),  # 10**400 overflows float()
        ):
            reference = GroupChecker(log, constraints, InstanceIndex(log))
            compiled = GroupChecker(
                log, constraints, CompiledInstanceIndex(log)
            )
            with pytest.raises(error):
                reference.holds(group)
            with pytest.raises(error):
                compiled.holds(group)

    def test_timestampless_log_is_vacuous(self, running_log):
        constraints = ConstraintSet(
            [MaxInstanceDuration(1.0), MaxConsecutiveGap(1.0), MinInstanceDuration(9.0)]
        )
        checker = _assert_same_verdicts(running_log, constraints)
        assert checker.kernel_checks > 0

    def test_mixed_naive_aware_timestamps_fall_back(self):
        log = EventLog(
            [
                Trace([Event("a", {"time:timestamp": datetime(2022, 1, 1)})]),
                Trace(
                    [
                        Event(
                            "b",
                            {
                                "time:timestamp": datetime(
                                    2022, 1, 2, tzinfo=timezone.utc
                                )
                            },
                        )
                    ]
                ),
            ]
        )
        # Event() normalizes construction-time stamps; force a naive one.
        log[0][0].attributes["time:timestamp"] = datetime(2022, 1, 1)
        compiled = CompiledLog(log)
        assert compiled.columns().timestamps() is None
        _assert_same_verdicts(
            log,
            ConstraintSet([MaxInstanceDuration(10.0)]),
            groups=[frozenset(["a"]), frozenset(["b"])],
        )

    def test_custom_subclass_never_kernelized(self, running_log):
        class Flaky(MaxEventsPerClass):
            def check_instance(self, instance, group):
                return len(instance) % 2 == 0

        checker = _assert_same_verdicts(
            running_log,
            ConstraintSet([Flaky(1)]),
            groups=_groups_upto(running_log, max_size=2, limit=40),
        )
        assert checker.kernel_checks == 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_paper_sets_identical_on_enriched_logs(self, policy):
        from repro.experiments.configs import constraint_set_for_log

        log = _synthetic_log(8, 30)
        for name in ("A", "M", "N", "C2"):
            constraints = constraint_set_for_log(name, log)
            checker = _assert_same_verdicts(
                log,
                constraints,
                groups=_groups_upto(log, max_size=3, limit=120),
                policy=policy,
            )
            assert checker.kernel_checks > 0


class TestExhaustiveFrontier:
    @pytest.mark.parametrize("set_name", ["A", "M", "N", "BL1"])
    def test_exhaustive_identical(self, set_name):
        from repro.experiments.configs import constraint_set_for_log

        log = _synthetic_log(8, 25)
        constraints = constraint_set_for_log(set_name, log)
        reference = exhaustive_candidates(log, constraints)
        compiled = CompiledLog(log)
        checker = GroupChecker(
            log, constraints, CompiledInstanceIndex(log, compiled)
        )
        result = exhaustive_candidates(
            log, constraints, checker=checker, compiled=compiled
        )
        assert result.groups == reference.groups
        assert result.stats.iterations == reference.stats.iterations
        assert result.stats.groups_checked == reference.stats.groups_checked
        assert result.stats.groups_expanded == reference.stats.groups_expanded
        assert result.stats.subset_prunes == reference.stats.subset_prunes

    def test_exhaustive_running_example(self, running_log, role_constraints):
        reference = exhaustive_candidates(running_log, role_constraints)
        compiled = CompiledLog(running_log)
        result = exhaustive_candidates(
            running_log, role_constraints, compiled=compiled
        )
        assert result.groups == reference.groups

    @pytest.mark.parametrize("strategy", ["exhaustive", "dfg"])
    @pytest.mark.parametrize("set_name", ["A", "M", "N"])
    def test_pipeline_strategy_engine_matrix_identical(self, set_name, strategy):
        from repro.experiments.configs import constraint_set_for_log

        log = _synthetic_log(7, 20)
        constraints = constraint_set_for_log(set_name, log)
        config = {"strategy": strategy}
        if strategy == "dfg":
            config["beam_width"] = "auto"
        results = {}
        for engine in ("python", "compiled"):
            results[engine] = Gecco(
                constraints, GeccoConfig(engine=engine, **config)
            ).abstract(log)
        ref, com = results["python"], results["compiled"]
        assert ref.feasible == com.feasible
        assert ref.num_candidates == com.num_candidates
        if ref.feasible:
            assert set(ref.grouping.groups) == set(com.grouping.groups)
            assert ref.distance == com.distance
            for ref_trace, com_trace in zip(
                ref.abstracted_log, com.abstracted_log
            ):
                assert list(ref_trace) == list(com_trace)
                assert ref_trace.attributes == com_trace.attributes


class TestCompiledAbstraction:
    @staticmethod
    def _assert_logs_byte_identical(reference, compiled):
        assert reference.attributes == compiled.attributes
        assert len(reference) == len(compiled)
        for ref_trace, com_trace in zip(reference, compiled):
            assert ref_trace.attributes == com_trace.attributes
            assert len(ref_trace) == len(com_trace)
            for ref_event, com_event in zip(ref_trace, com_trace):
                assert ref_event.event_class == com_event.event_class
                assert ref_event.attributes == com_event.attributes
                for key, value in ref_event.attributes.items():
                    assert repr(value) == repr(com_event.attributes[key])

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_abstraction_byte_identical(self, loan_log, strategy, policy):
        grouping = (
            Gecco(
                ConstraintSet([MaxGroupSize(4)]),
                GeccoConfig(beam_width="auto"),
            )
            .abstract(loan_log)
            .grouping
        )
        reference = abstract_log(
            loan_log,
            grouping,
            InstanceIndex(loan_log, policy=policy),
            strategy=strategy,
        )
        compiled = abstract_log(
            loan_log,
            grouping,
            CompiledInstanceIndex(loan_log, policy=policy),
            strategy=strategy,
        )
        self._assert_logs_byte_identical(reference, compiled)

    def test_non_datetime_stamps_fall_back_to_reference(self):
        # The reference emits provenance for *any* non-None timestamp
        # value; non-datetime stamps must route Step 3 to that path.
        log = EventLog(
            [
                Trace(
                    [
                        Event("a", {}),
                        Event("b", {}),
                    ]
                )
            ]
        )
        log[0][0].attributes["time:timestamp"] = "01/02/2022 10:00"
        log[0][1].attributes["time:timestamp"] = "01/02/2022 11:00"
        from repro.core.grouping import Grouping

        grouping = Grouping([frozenset(["a", "b"])], log.classes)
        index = CompiledInstanceIndex(log)
        assert index.compiled.columns().timestamps().has_foreign_stamps
        for strategy in STRATEGIES:
            reference = abstract_log(
                log, grouping, InstanceIndex(log), strategy=strategy
            )
            compiled = abstract_log(log, grouping, index, strategy=strategy)
            self._assert_logs_byte_identical(reference, compiled)

    def test_timestamp_ties_pick_the_same_event(self):
        stamp = datetime(2022, 5, 10, tzinfo=timezone.utc)
        log = EventLog(
            [
                Trace(
                    [
                        Event("a", {"time:timestamp": stamp, "tag": 1}),
                        Event("b", {"time:timestamp": stamp, "tag": 2}),
                    ]
                )
            ]
        )
        from repro.core.grouping import Grouping

        grouping = Grouping([frozenset(["a", "b"])], log.classes)
        for strategy in STRATEGIES:
            reference = abstract_log(
                log, grouping, InstanceIndex(log), strategy=strategy
            )
            compiled = abstract_log(
                log, grouping, CompiledInstanceIndex(log), strategy=strategy
            )
            self._assert_logs_byte_identical(reference, compiled)


class TestFuzzKernels:
    @given(
        data=st.data(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_fuzz_attribute_verdicts_identical(self, data, seed):
        rng = random.Random(seed)
        classes = ["a", "b", "c", "d"]
        traces = []
        for _ in range(rng.randint(1, 6)):
            events = []
            clock = 0
            for _ in range(rng.randint(1, 10)):
                attrs = {}
                if rng.random() < 0.7:
                    attrs["v"] = rng.choice(
                        [rng.uniform(-5, 5), rng.randint(-3, 3), "str", True]
                    )
                if rng.random() < 0.6:
                    clock += rng.randint(0, 5000)
                    attrs["time:timestamp"] = datetime.fromtimestamp(
                        clock, tz=timezone.utc
                    )
                events.append(Event(rng.choice(classes), attrs))
            traces.append(Trace(events))
        log = EventLog(traces)
        how = data.draw(
            st.sampled_from(["sum", "avg", "min", "max", "count", "distinct"])
        )
        threshold = data.draw(
            st.sampled_from([-2.0, 0.0, 1.0, 2.5, 5.0])
        )
        constraints = ConstraintSet(
            [
                MinInstanceAggregate("v", how, threshold),
                MaxInstanceAggregate("v", how, threshold),
                MaxInstanceDuration(2500.0),
                MaxConsecutiveGap(2000.0),
                MaxEventsPerClass(2),
                AtLeastFraction(MinInstanceAggregate("v", how, threshold), 0.5),
            ]
        )
        policy = data.draw(st.sampled_from(POLICIES))
        _assert_same_verdicts(
            log,
            constraints,
            groups=_groups_upto(log, max_size=3, limit=30),
            policy=policy,
        )


class TestExtractionMemo:
    def test_python_engine_scans_each_instance_once_per_key(self):
        from repro.constraints import aggregates

        scans = 0

        class CountingDict(dict):
            def __contains__(self, key):
                nonlocal scans
                scans += 1
                return super().__contains__(key)

        events = [Event("a", {"duration": 1.0}), Event("b", {"duration": 2.0})]
        for event in events:
            event.attributes = CountingDict(event.attributes)
        instance = events
        aggregates._extraction_cache.clear()
        first = aggregates.aggregate(instance, "duration", "sum")
        probes_after_first = scans
        second = aggregates.aggregate(instance, "duration", "avg")
        assert (first, second) == (3.0, 1.5)
        # The second aggregate reuses the memoized extraction.
        assert scans == probes_after_first

    def test_memo_is_identity_safe(self):
        from repro.constraints import aggregates

        aggregates._extraction_cache.clear()
        one = [Event("a", {"k": 1.0})]
        two = [Event("a", {"k": 2.0})]
        assert aggregates.aggregate(one, "k", "sum") == 1.0
        assert aggregates.aggregate(two, "k", "sum") == 2.0
        assert aggregates.aggregate(one, "k", "sum") == 1.0
