"""Unit tests for constraint suggestion (paper future-work item 2)."""

import pytest

from repro.constraints.classbased import MaxDistinctClassAttribute, MaxGroupSize
from repro.constraints.grouping import MaxGroups
from repro.constraints.instancebased import (
    MaxDistinctInstanceAttribute,
    MaxInstanceAggregate,
    MaxInstanceDuration,
)
from repro.constraints.sets import ConstraintSet
from repro.constraints.suggestion import Suggestion, suggest_constraints
from repro.eventlog.events import Event, EventLog, Trace, log_from_variants


def _by_type(suggestions, constraint_type):
    return [s for s in suggestions if isinstance(s.constraint, constraint_type)]


class TestPartitioningAttributes:
    def test_role_partition_suggested_on_running_example(self, running_log):
        suggestions = suggest_constraints(running_log)
        partition = _by_type(suggestions, MaxDistinctClassAttribute)
        assert any(s.constraint.key == "org:role" for s in partition)
        role = next(s for s in partition if s.constraint.key == "org:role")
        assert role.constraint.bound == 1
        assert "2 blocks" in role.rationale

    def test_origin_partition_suggested_on_loan_log(self, loan_log):
        suggestions = suggest_constraints(loan_log)
        partition = _by_type(suggestions, MaxDistinctClassAttribute)
        assert any(s.constraint.key == "origin" for s in partition)

    def test_non_constant_attribute_not_partitioning(self):
        # Attribute varies within a class -> not a partitioning attribute.
        log = EventLog(
            [
                Trace([Event("a", {"k": "x"}), Event("b", {"k": "y"})]),
                Trace([Event("a", {"k": "y"}), Event("b", {"k": "y"})]),
            ]
        )
        suggestions = suggest_constraints(log)
        assert not any(
            isinstance(s.constraint, MaxDistinctClassAttribute)
            and s.constraint.key == "k"
            for s in suggestions
        )

    def test_single_block_attribute_not_suggested(self):
        log = log_from_variants(
            [["a", "b", "c", "d", "e"]],
            {cls: {"site": "HQ"} for cls in "abcde"},
        )
        suggestions = suggest_constraints(log)
        assert not _by_type(suggestions, MaxDistinctClassAttribute)


class TestSizeAndNumericSuggestions:
    def test_size_bounds_for_wide_logs(self, small_synthetic_log):
        suggestions = suggest_constraints(small_synthetic_log)
        assert _by_type(suggestions, MaxGroupSize)
        assert _by_type(suggestions, MaxGroups)

    def test_no_size_bounds_for_tiny_logs(self):
        log = log_from_variants([["a", "b"]])
        suggestions = suggest_constraints(log)
        assert not _by_type(suggestions, MaxGroupSize)

    def test_duration_cap_when_timestamped(self, running_log):
        suggestions = suggest_constraints(running_log)
        durations = _by_type(suggestions, MaxInstanceDuration)
        assert durations
        assert durations[0].constraint.seconds > 0

    def test_numeric_cap_suggested(self, small_synthetic_log):
        suggestions = suggest_constraints(small_synthetic_log)
        numeric = _by_type(suggestions, MaxInstanceAggregate)
        assert any(s.constraint.key == "cost" for s in numeric)

    def test_instance_diversity_on_varied_attribute(self, small_synthetic_log):
        suggestions = suggest_constraints(small_synthetic_log)
        diversity = _by_type(suggestions, MaxDistinctInstanceAttribute)
        assert any(s.constraint.key == "org:role" for s in diversity)


class TestSuggestionQuality:
    def test_limit(self, running_log):
        assert len(suggest_constraints(running_log, limit=2)) == 2

    def test_describe(self, running_log):
        suggestion = suggest_constraints(running_log)[0]
        assert isinstance(suggestion, Suggestion)
        assert "[" in suggestion.describe()

    def test_selectivity_in_range(self, loan_log):
        for suggestion in suggest_constraints(loan_log):
            assert 0.0 <= suggestion.selectivity <= 1.0

    def test_suggestions_are_usable_by_gecco(self, running_log):
        """The top structural suggestion must yield a feasible problem."""
        from repro.core.gecco import Gecco

        suggestions = suggest_constraints(running_log)
        partition = _by_type(suggestions, MaxDistinctClassAttribute)[0]
        result = Gecco(ConstraintSet([partition.constraint])).abstract(running_log)
        assert result.feasible

    def test_empty_log(self):
        assert suggest_constraints(EventLog([])) == []
