"""Unit tests for inductive-miner-style process-tree discovery."""

import pytest

from repro.datasets.playout import playout
from repro.datasets.process_tree import Operator, leaf, loop, par, seq, xor
from repro.eventlog.events import log_from_variants
from repro.exceptions import DiscoveryError
from repro.mining.inductive import inductive_miner, tree_size


class TestBaseCases:
    def test_single_activity(self):
        tree = inductive_miner(log_from_variants([["a"]]))
        assert tree.is_leaf
        assert tree.label == "a"

    def test_self_loop_single_activity(self):
        tree = inductive_miner(log_from_variants([["a", "a", "a"]]))
        assert tree.operator is Operator.LOOP

    def test_empty_log_rejected(self):
        with pytest.raises(DiscoveryError):
            inductive_miner(log_from_variants([]))


class TestCuts:
    def test_sequence_cut(self):
        tree = inductive_miner(log_from_variants([["a", "b", "c"]] * 3))
        assert repr(tree) == "seq(a, b, c)"

    def test_xor_cut(self):
        tree = inductive_miner(
            log_from_variants({("a", "b", "d"): 5, ("a", "c", "d"): 5})
        )
        assert repr(tree) == "seq(a, xor(b, c), d)"

    def test_parallel_cut(self):
        tree = inductive_miner(
            log_from_variants({("a", "b", "c", "d"): 5, ("a", "c", "b", "d"): 5})
        )
        assert repr(tree) == "seq(a, and(b, c), d)"

    def test_top_level_choice(self):
        tree = inductive_miner(log_from_variants({("a",): 3, ("b",): 3}))
        assert tree.operator is Operator.XOR
        assert sorted(child.label for child in tree.children) == ["a", "b"]

    def test_loop_structure_detected(self):
        # a (r a)* — body {a} is start and end, redo {r}.
        log = log_from_variants({("a",): 4, ("a", "r", "a"): 4})
        tree = inductive_miner(log)
        assert tree.operator is Operator.LOOP
        assert tree.children[0].label == "a"
        assert tree.children[1].label == "r"


class TestRediscovery:
    """Play a known tree out and rediscover its structure."""

    @pytest.mark.parametrize(
        "tree",
        [
            seq(leaf("a"), leaf("b"), leaf("c")),
            seq(leaf("a"), xor(leaf("b"), leaf("c")), leaf("d")),
            seq(leaf("a"), par(leaf("b"), leaf("c")), leaf("d")),
            xor(seq(leaf("a"), leaf("b")), seq(leaf("c"), leaf("d"))),
        ],
        ids=repr,
    )
    def test_structure_rediscovered(self, tree):
        log = playout(tree, 60, seed=4)
        rediscovered = inductive_miner(log)
        assert repr(rediscovered) == repr(tree)

    def test_loop_playout_rediscovery(self):
        tree = loop(seq(leaf("a"), leaf("b")), leaf("r"), repeat_probability=0.5)
        log = playout(tree, 80, seed=4)
        rediscovered = inductive_miner(log)
        assert rediscovered.operator is Operator.LOOP


class TestTreeSize:
    def test_size_counts_nodes(self):
        assert tree_size(leaf("a")) == 1
        assert tree_size(seq(leaf("a"), xor(leaf("b"), leaf("c")))) == 5

    def test_abstraction_yields_smaller_tree(self, running_log, role_constraints):
        """§I: abstraction produces more structured (smaller) models."""
        from repro.core.gecco import Gecco

        result = Gecco(role_constraints).abstract(running_log)
        raw_tree = inductive_miner(running_log)
        abstracted_tree = inductive_miner(result.abstracted_log)
        assert tree_size(abstracted_tree) < tree_size(raw_tree)


class TestFallthrough:
    def test_flower_on_unstructured_log(self):
        # Every permutation of {a, b} plus overlaps: no clean cut at the
        # top level after the miner exhausts cuts -> still total.
        log = log_from_variants(
            {("a", "b", "a"): 2, ("b", "a", "b"): 2, ("a",): 1, ("b",): 1}
        )
        tree = inductive_miner(log)
        leaves = set(tree.leaves())
        assert leaves == {"a", "b"}
