"""Unit tests for the JSON constraint parser."""

import pytest

from repro.constraints.base import AtLeastFraction
from repro.constraints.classbased import MaxGroupSize
from repro.constraints.grouping import MaxGroups
from repro.constraints.instancebased import MaxInstanceAggregate
from repro.constraints.parser import (
    known_constraint_types,
    parse_constraint,
    parse_constraints,
)
from repro.exceptions import ConstraintError


class TestParseConstraint:
    def test_class_constraint(self):
        constraint = parse_constraint({"type": "max_group_size", "bound": 8})
        assert isinstance(constraint, MaxGroupSize)
        assert constraint.bound == 8

    def test_grouping_constraint(self):
        constraint = parse_constraint({"type": "max_groups", "bound": 3})
        assert isinstance(constraint, MaxGroups)

    def test_instance_constraint(self):
        constraint = parse_constraint(
            {"type": "max_instance_aggregate", "key": "cost", "how": "sum", "threshold": 500}
        )
        assert isinstance(constraint, MaxInstanceAggregate)
        assert constraint.threshold == 500

    def test_fraction_wraps_instance_constraint(self):
        constraint = parse_constraint(
            {
                "type": "max_instance_aggregate",
                "key": "cost",
                "how": "sum",
                "threshold": 500,
                "fraction": 0.95,
            }
        )
        assert isinstance(constraint, AtLeastFraction)
        assert constraint.fraction == 0.95

    def test_fraction_rejected_for_class_constraint(self):
        with pytest.raises(ConstraintError):
            parse_constraint(
                {"type": "max_group_size", "bound": 8, "fraction": 0.9}
            )

    def test_missing_type(self):
        with pytest.raises(ConstraintError, match="type"):
            parse_constraint({"bound": 8})

    def test_unknown_type(self):
        with pytest.raises(ConstraintError, match="unknown constraint type"):
            parse_constraint({"type": "fancy"})

    def test_missing_field(self):
        with pytest.raises(ConstraintError, match="missing"):
            parse_constraint({"type": "cannot_link", "class_a": "a"})

    def test_unknown_field(self):
        with pytest.raises(ConstraintError, match="unknown fields"):
            parse_constraint({"type": "max_group_size", "bound": 8, "color": "red"})

    def test_optional_field(self):
        constraint = parse_constraint(
            {"type": "min_events_per_class", "bound": 2, "classes": ["a"]}
        )
        assert constraint.classes == frozenset({"a"})


class TestParseConstraints:
    def test_builds_set(self):
        constraint_set = parse_constraints(
            [
                {"type": "max_group_size", "bound": 8},
                {"type": "max_groups", "bound": 3},
            ]
        )
        assert len(constraint_set) == 2
        assert constraint_set.max_groups == 3

    def test_empty_list(self):
        assert len(parse_constraints([])) == 0

    def test_known_types_all_parseable(self):
        # Every registered type has a smoke-test spec.
        samples = {
            "max_groups": {"bound": 3},
            "min_groups": {"bound": 2},
            "exact_groups": {"count": 4},
            "max_group_size": {"bound": 5},
            "min_group_size": {"bound": 2},
            "cannot_link": {"class_a": "a", "class_b": "b"},
            "must_link": {"class_a": "a", "class_b": "b"},
            "max_distinct_class_attribute": {"key": "origin", "bound": 1},
            "min_distinct_class_attribute": {"key": "origin", "bound": 2},
            "required_classes": {"allowed": ["a", "b"]},
            "max_instance_aggregate": {"key": "cost", "how": "sum", "threshold": 10},
            "min_instance_aggregate": {"key": "cost", "how": "sum", "threshold": 10},
            "max_distinct_instance_attribute": {"key": "org:role", "bound": 3},
            "min_distinct_instance_attribute": {"key": "org:role", "bound": 1},
            "max_instance_duration": {"seconds": 60},
            "min_instance_duration": {"seconds": 60},
            "max_consecutive_gap": {"seconds": 600},
            "max_events_per_class": {"bound": 1},
            "min_events_per_class": {"bound": 1},
        }
        for type_tag in known_constraint_types():
            assert type_tag in samples, f"no sample for {type_tag}"
            parse_constraint({"type": type_tag, **samples[type_tag]})
