"""Unit tests for Step 2: optimal grouping selection."""

import pytest

from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.exclusive import merge_exclusive_candidates
from repro.core.selection import select_optimal_grouping
from repro.datasets import PAPER_OPTIMAL_GROUPS
from repro.exceptions import SolverError
from repro.mip.result import SolverStatus


@pytest.fixture(scope="module")
def running_candidates(running_log, role_constraints):
    checker = GroupChecker(running_log, role_constraints)
    candidates = dfg_candidates(running_log, role_constraints, checker=checker).groups
    merged, _ = merge_exclusive_candidates(running_log, candidates, checker)
    return merged


class TestPaperOptimum:
    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    def test_finds_fig7_grouping(self, running_log, running_candidates, backend):
        distance = DistanceFunction(running_log)
        result = select_optimal_grouping(
            running_log, running_candidates, distance, backend=backend
        )
        assert result.feasible
        assert set(result.grouping.groups) == set(PAPER_OPTIMAL_GROUPS)
        assert result.objective == pytest.approx(3.0833333, abs=1e-6)

    def test_backends_agree(self, running_log, running_candidates):
        distance = DistanceFunction(running_log)
        scipy_result = select_optimal_grouping(
            running_log, running_candidates, distance, backend="scipy"
        )
        bnb_result = select_optimal_grouping(
            running_log, running_candidates, distance, backend="bnb"
        )
        assert scipy_result.objective == pytest.approx(bnb_result.objective)


class TestCardinality:
    def test_max_groups_bound(self, running_log, running_candidates):
        distance = DistanceFunction(running_log)
        result = select_optimal_grouping(
            running_log, running_candidates, distance, max_groups=4
        )
        assert result.feasible
        assert len(result.grouping) <= 4

    def test_min_groups_bound(self, running_log, running_candidates):
        distance = DistanceFunction(running_log)
        result = select_optimal_grouping(
            running_log, running_candidates, distance, min_groups=6
        )
        assert result.feasible
        assert len(result.grouping) >= 6

    def test_infeasible_cardinality(self, running_log, running_candidates):
        distance = DistanceFunction(running_log)
        result = select_optimal_grouping(
            running_log, running_candidates, distance, max_groups=1
        )
        assert not result.feasible
        assert result.status is SolverStatus.INFEASIBLE


class TestInfeasibility:
    def test_missing_class_coverage(self, running_log):
        distance = DistanceFunction(running_log)
        candidates = {frozenset({"rcp"})}  # covers one of eight classes
        result = select_optimal_grouping(running_log, candidates, distance)
        assert not result.feasible

    def test_unknown_backend(self, running_log, running_candidates):
        distance = DistanceFunction(running_log)
        with pytest.raises(SolverError):
            select_optimal_grouping(
                running_log, running_candidates, distance, backend="gurobi"
            )

    def test_result_counts_candidates(self, running_log, running_candidates):
        distance = DistanceFunction(running_log)
        result = select_optimal_grouping(running_log, running_candidates, distance)
        assert result.num_candidates == len(running_candidates)
