"""Tests for the one-call reproduction driver (tiny scale)."""

import pytest

from repro.cli import main
from repro.experiments.persistence import load_report
from repro.experiments.reproduce import reproduce_all


@pytest.fixture(scope="module")
def summary(tmp_path_factory):
    output = tmp_path_factory.mktemp("repro_out")
    return (
        reproduce_all(
            output,
            max_traces=10,
            max_classes=6,
            candidate_timeout=5.0,
            case_study_traces=60,
            include_exhaustive=False,
        ),
        output,
    )


class TestReproduceAll:
    def test_artifacts_written(self, summary):
        result, output = summary
        names = set(result.artifacts)
        assert {"table3.txt", "table5.txt", "table7.txt", "problems.json",
                "problems.csv", "fig1_loan_8020_dfg.dot"} <= names
        for name in names:
            assert (output / name).exists(), name

    def test_tables_have_content(self, summary):
        _, output = summary
        assert "Table III" in (output / "table3.txt").read_text()
        assert "Table V" in (output / "table5.txt").read_text()
        assert "Table VII" in (output / "table7.txt").read_text()

    def test_problem_report_loadable(self, summary):
        result, output = summary
        report = load_report(output / "problems.json")
        assert len(report.rows) == result.problems_run
        assert result.problems_run > 0

    def test_case_study_artifacts(self, summary):
        _, output = summary
        dot = (output / "fig8_abstracted_8020_dfg.dot").read_text()
        assert dot.startswith("digraph")
        grouping = (output / "fig8_grouping.txt").read_text()
        assert "{" in grouping

    def test_describe(self, summary):
        result, _ = summary
        text = result.describe()
        assert "table5.txt" in text
        assert "abstraction problems" in text


class TestReproduceCli:
    def test_cli_reproduce(self, tmp_path, capsys):
        code = main(
            [
                "reproduce",
                "--output", str(tmp_path / "out"),
                "--max-traces", "8",
                "--max-classes", "5",
                "--timeout", "5",
                "--no-exhaustive",
            ]
        )
        assert code == 0
        assert "table5.txt" in capsys.readouterr().out
