"""Additional streaming scenarios: tumbling resets, epoch ordering, config."""

import pytest

from repro.constraints import ConstraintSet, MaxGroupSize
from repro.core.gecco import GeccoConfig
from repro.eventlog.events import Event, Trace
from repro.streaming import StreamingAbstractor, TraceWindow
from repro.streaming.drift import DriftDetector


def trace_of(*classes):
    return Trace([Event(cls) for cls in classes])


class TestEpochAuditTrail:
    def test_epochs_ordered_by_trace_counter(self):
        abstractor = StreamingAbstractor(
            ConstraintSet([MaxGroupSize(3)]),
            GeccoConfig(strategy="dfg"),
            window_size=30,
            min_traces=5,
            check_every=5,
            drift_threshold=0.1,
        )
        for _ in range(15):
            abstractor.process(trace_of("a", "b", "c"))
        for _ in range(25):
            abstractor.process(trace_of("c", "a", "x", "b"))
        markers = [epoch.started_at_trace for epoch in abstractor.epochs]
        assert markers == sorted(markers)
        assert all(epoch.reason for epoch in abstractor.epochs)

    def test_first_epoch_carries_distance(self):
        abstractor = StreamingAbstractor(
            ConstraintSet([MaxGroupSize(3)]),
            GeccoConfig(strategy="dfg"),
            window_size=20,
            min_traces=3,
            check_every=3,
        )
        for _ in range(9):
            abstractor.process(trace_of("a", "b", "c"))
        assert abstractor.epochs
        assert abstractor.epochs[0].distance is not None


class TestWindowSemantics:
    def test_window_smaller_than_min_traces_never_groups(self):
        abstractor = StreamingAbstractor(
            ConstraintSet([MaxGroupSize(3)]),
            window_size=3,
            min_traces=10,  # unreachable: window caps at 3
            check_every=1,
        )
        for _ in range(20):
            abstractor.process(trace_of("a", "b"))
        assert abstractor.grouping is None

    def test_tumbling_reset_forgets_history(self):
        window = TraceWindow(10)
        for _ in range(5):
            window.push(trace_of("a"))
        window.clear()
        window.push(trace_of("b"))
        assert window.as_log().classes == frozenset({"b"})
        assert window.total_seen == 6  # the counter survives resets


class TestDriftRebase:
    def test_rebase_suppresses_repeat_alarms(self):
        detector = DriftDetector(threshold=0.2)
        from repro.eventlog.dfg import compute_dfg
        from repro.eventlog.events import log_from_variants

        stable = compute_dfg(log_from_variants([["a", "b", "c"]] * 5))
        shifted = compute_dfg(log_from_variants([["a", "c", "b"]] * 5))
        detector.rebase(stable)
        assert detector.check(shifted).drifted
        detector.rebase(shifted)
        assert not detector.check(shifted).drifted
