"""Unit tests for the GECCO distance measure (Eq. 1 / Eq. 2)."""

import pytest

from repro.core.distance import DistanceFunction, interrupts, missing
from repro.core.instances import InstanceIndex
from repro.datasets import PAPER_OPTIMAL_DISTANCE, PAPER_OPTIMAL_GROUPS
from repro.eventlog.events import log_from_variants
from repro.exceptions import GroupingError


class TestInterrupts:
    def test_contiguous_instance_has_none(self):
        assert interrupts([2, 3, 4]) == 0

    def test_counts_foreign_events_in_span(self):
        # ⟨a, b, c, d, e⟩ with instance {a, e}: three interspersed events.
        assert interrupts([0, 4]) == 3

    def test_single_event_instance(self):
        assert interrupts([7]) == 0


class TestMissing:
    def test_complete_instance(self):
        assert missing(["a", "b"], frozenset({"a", "b"})) == 0

    def test_partial_instance(self):
        assert missing(["a"], frozenset({"a", "b", "c"})) == 2


class TestGroupDistance:
    def test_paper_fig7_value(self, running_log):
        """The paper's optimal grouping scores exactly dist = 3.08."""
        distance = DistanceFunction(running_log)
        total = distance.grouping_distance(PAPER_OPTIMAL_GROUPS)
        assert total == pytest.approx(3.0833333, abs=1e-6)
        assert round(total, 2) == PAPER_OPTIMAL_DISTANCE

    def test_fig7_component_values(self, running_log):
        distance = DistanceFunction(running_log)
        assert distance.group_distance({"rcp", "ckc", "ckt"}) == pytest.approx(2 / 3)
        assert distance.group_distance({"prio", "inf", "arv"}) == pytest.approx(5 / 12)
        assert distance.group_distance({"acc"}) == pytest.approx(1.0)
        assert distance.group_distance({"rej"}) == pytest.approx(1.0)

    def test_singleton_distance_is_one(self):
        log = log_from_variants([["a", "b"], ["a"]])
        distance = DistanceFunction(log)
        # Singletons have perfect cohesion/correlation; only 1/|g| remains.
        assert distance.group_distance({"a"}) == pytest.approx(1.0)

    def test_interruption_penalty(self):
        # Grouping a and e in ⟨a,b,c,d,e⟩: interrupts 3, len 2 -> 1.5 + 0 + 1/2.
        log = log_from_variants([["a", "b", "c", "d", "e"]])
        distance = DistanceFunction(log)
        assert distance.group_distance({"a", "e"}) == pytest.approx(1.5 + 0.5)

    def test_missing_penalty(self):
        # {a, b} in traces where b never occurs with a.
        log = log_from_variants([["a", "c"], ["b", "c"]])
        distance = DistanceFunction(log)
        # Two instances, each missing one of two classes: avg 1/2 + 1/2.
        assert distance.group_distance({"a", "b"}) == pytest.approx(1.0)

    def test_group_without_instances(self):
        log = log_from_variants([["a"]])
        distance = DistanceFunction(log)
        assert distance.group_distance({"zz", "qq"}) == pytest.approx(0.5)

    def test_empty_group_rejected(self, running_log):
        with pytest.raises(GroupingError):
            DistanceFunction(running_log).group_distance(frozenset())

    def test_distance_is_cached(self, running_log):
        distance = DistanceFunction(running_log)
        distance.group_distance({"acc"})
        distance.group_distance({"acc"})
        assert distance.cache_size() == 1

    def test_shared_instance_index_must_match_log(self, running_log):
        other_log = log_from_variants([["a"]])
        index = InstanceIndex(other_log)
        with pytest.raises(GroupingError):
            DistanceFunction(running_log, index)

    def test_grouping_distance_sums_groups(self, running_log):
        distance = DistanceFunction(running_log)
        parts = [distance.group_distance(g) for g in PAPER_OPTIMAL_GROUPS]
        assert distance.grouping_distance(PAPER_OPTIMAL_GROUPS) == pytest.approx(
            sum(parts)
        )

    def test_perfect_group_distance(self):
        # Always-contiguous, always-complete pair: only the 1/|g| term.
        log = log_from_variants([["a", "b"], ["a", "b"]])
        distance = DistanceFunction(log)
        assert distance.group_distance({"a", "b"}) == pytest.approx(0.5)

    def test_larger_groups_preferred_over_unary(self):
        log = log_from_variants([["a", "b"], ["a", "b"]])
        distance = DistanceFunction(log)
        merged = distance.group_distance({"a", "b"})
        split = distance.group_distance({"a"}) + distance.group_distance({"b"})
        assert merged < split
