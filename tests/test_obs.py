"""The observability layer: trace writer, metrics registry, doctor.

Three properties matter and are tested here:

1. **Crash-safe tracing** — every emitted line is a complete JSON
   record even when many processes append to the same file, and a
   torn/corrupt line never breaks the reader.
2. **Zero distortion** — tracing is observational: results with
   ``--trace`` on are byte-identical to results with it off.
3. **Faithful forensics** — ``repro doctor`` reconstructs the failure
   taxonomy (retries, redeliveries, quarantines, sheds, deadline
   misses) exactly from the event stream.
"""

import json
import multiprocessing
import os
import urllib.request

import pytest

from repro.constraints import ConstraintSet, MaxGroupSize
from repro.obs import (
    TRACE_EVENTS,
    TRACE_SCHEMA,
    MetricsRegistry,
    MetricsServer,
    TraceWriter,
    analyze_trace,
    merge_traces,
    read_trace,
    render_report,
    sync_executor_stats,
    sync_worker_stats,
)
from repro.service import (
    AbstractionJob,
    LogRef,
    PoolExecutor,
    SequentialExecutor,
    run_batch,
)
from repro.service.dist.worker import WorkerStats


def _job(bound=3, log="loan:15"):
    return AbstractionJob(
        log=LogRef.builtin(log),
        constraints=ConstraintSet([MaxGroupSize(bound)]),
    )


class TestTraceWriter:
    def test_schema_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, worker="w1") as tracer:
            tracer.emit("submitted", fingerprint="abc", attempt=0)
            tracer.emit("done", fingerprint="abc", seconds=0.5, cached=False)
        events = read_trace(path)
        assert [e["event"] for e in events] == ["submitted", "done"]
        first, second = events
        # Schema tag stamps the writer's first record only.
        assert first["schema"] == TRACE_SCHEMA
        assert "schema" not in second
        for event in events:
            assert event["worker"] == "w1"
            assert event["pid"] == os.getpid()
            assert isinstance(event["ts"], float)
            assert isinstance(event["mono"], float)
        assert second["seconds"] == 0.5
        assert second["cached"] is False

    def test_every_event_name_is_known(self):
        # The doctor's taxonomy keys off these names; keep them stable.
        for name in (
            "submitted", "queued", "claimed", "heartbeat", "requeued",
            "released", "quarantined", "shed", "deadline_exceeded",
            "cache_hit", "artifact_build", "solve", "done", "worker_exit",
            "metrics_endpoint", "worker_restart", "supervisor_started",
            "supervisor_slot_quarantined", "supervisor_exit",
        ):
            assert name in TRACE_EVENTS

    def test_none_fields_are_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as tracer:
            tracer.emit("done", error=None, seconds=1.0)
        (event,) = read_trace(path)
        assert "error" not in event
        assert event["seconds"] == 1.0

    def test_never_raises_on_unwritable_path(self, tmp_path):
        target = tmp_path / "not-a-dir" / "trace.jsonl"
        tracer = TraceWriter(target)
        tracer.emit("submitted")  # must not raise
        tracer.emit("done")
        assert tracer.dropped == 2
        tracer.close()

    def test_reader_skips_torn_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as tracer:
            tracer.emit("submitted")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json}\n")
            handle.write('{"event": "done", "ts": 1.0, "mono": 1.0}\n')
            handle.write('{"event": "torn", "ts"')  # crash mid-write
        events = read_trace(path)
        assert [e["event"] for e in events] == ["submitted", "done"]


def _append_events(path, worker, count):
    with TraceWriter(path, worker=worker) as tracer:
        for i in range(count):
            tracer.emit("heartbeat", seq=i)


class TestMultiProcessAppend:
    def test_interleaved_appends_reassemble(self, tmp_path):
        """N processes appending concurrently never tear a line."""
        path = tmp_path / "trace.jsonl"
        workers, per_worker = 4, 50
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(
                target=_append_events, args=(str(path), f"w{i}", per_worker)
            )
            for i in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        events = read_trace(path)
        assert len(events) == workers * per_worker
        for name in (f"w{i}" for i in range(workers)):
            seqs = [e["seq"] for e in events if e["worker"] == name]
            assert sorted(seqs) == list(range(per_worker))

    def test_merge_traces_orders_by_timestamp(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(
            '{"event": "done", "ts": 2.0, "mono": 2.0}\n', encoding="utf-8"
        )
        b.write_text(
            '{"event": "submitted", "ts": 1.0, "mono": 1.0}\n'
            '{"event": "claimed", "ts": 3.0, "mono": 3.0}\n',
            encoding="utf-8",
        )
        merged = merge_traces([a, b])
        assert [e["event"] for e in merged] == ["submitted", "done", "claimed"]


def _synthetic_fault_trace():
    """A handcrafted trace exercising every taxonomy branch."""
    ts = [0.0]

    def event(name, **fields):
        ts[0] += 0.01
        return {"event": name, "ts": ts[0], "mono": ts[0], "pid": 1, **fields}

    return [
        # Claim failures surface as retry events (chaos claim faults).
        event("retry", op="claim", attempt=0, cause="ChaosError: claim"),
        event("retry", op="claim", attempt=1, cause="ChaosError: claim"),
        event("retry", op="complete", attempt=0, cause="BrokerError: io"),
        # Corrupt payload: voluntary release, then redelivery (attempt>0).
        event("claimed", task_id="t1", attempt=0, worker="w1"),
        event("released", task_id="t1", attempt=0, reason="corrupt payload"),
        event("claimed", task_id="t1", attempt=1, worker="w2"),
        event("done", task_id="t1", ok=True, seconds=0.5, worker="w2"),
        # Dropped heartbeats: lease expiry redelivery (no release first).
        event("heartbeat", error="ChaosError: dropped", worker="w3"),
        event("claimed", task_id="t2", attempt=0, worker="w3"),
        event("requeued", count=1, by="worker_sweep"),
        event("claimed", task_id="t2", attempt=1, worker="w1"),
        event("done", task_id="t2", ok=True, seconds=0.4, worker="w1"),
        # Poison payload: attempts exhausted, quarantined.
        event("claimed", task_id="t3", attempt=2, worker="w1"),
        event(
            "quarantined", task_id="t3", attempt=2,
            reason="payload does not deserialize: poison",
        ),
        # Load shedding and deadline misses.
        event("shed", cause="max_load", fingerprint="f4"),
        event("deadline_exceeded", stage="queued", fingerprint="f5"),
        event("done", fingerprint="f6", error="ValueError: boom", seconds=0.1),
    ]


class TestDoctor:
    def test_taxonomy_on_synthetic_trace(self):
        report = analyze_trace(_synthetic_fault_trace())
        taxonomy = report["taxonomy"]
        assert taxonomy["retries"] == {
            "claim:ChaosError: claim": 2,
            "complete:BrokerError: io": 1,
        }
        # t1 was released then reclaimed -> voluntary; t2's and t3's
        # reclaims had no matching release -> lease expiry.
        assert taxonomy["redeliveries"]["released"] == 1
        assert taxonomy["redeliveries"]["lease_expired"] == 2
        assert taxonomy["requeue_sweep_moves"] == 1
        assert taxonomy["releases"] == 1
        assert taxonomy["heartbeat_errors"] == 1
        assert taxonomy["quarantines"] == {"poison_payload": 1}
        assert taxonomy["sheds"] == {"max_load": 1}
        assert taxonomy["deadline_exceeded"] == {"queued": 1}
        assert taxonomy["job_failures"] == 1

    def test_latency_and_render(self, tmp_path):
        events = _synthetic_fault_trace()
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        report = analyze_trace([path])
        totals = report["latency"]["job_total"]
        assert totals["count"] == 3
        assert totals["p50_s"] == pytest.approx(0.4)
        text = render_report(report)
        assert "repro doctor" in text
        assert "poison_payload" in text
        assert "max_load" in text

    def test_accepts_multiple_paths(self, tmp_path):
        events = _synthetic_fault_trace()
        half = len(events) // 2
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path, chunk in ((a, events[:half]), (b, events[half:])):
            with open(path, "w", encoding="utf-8") as handle:
                for event in chunk:
                    handle.write(json.dumps(event) + "\n")
        report = analyze_trace([a, b])
        assert report["events"] == len(events)


class TestMetrics:
    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        jobs = registry.counter("repro_jobs_total", "Jobs run")
        jobs.inc(status="ok")
        jobs.inc(2, status="error")
        depth = registry.gauge("repro_queue_depth", "Queue depth")
        depth.set(7)
        lat = registry.histogram(
            "repro_solve_seconds", "Solve latency", buckets=(0.1, 1.0)
        )
        lat.observe(0.05)
        lat.observe(0.5)
        lat.observe(5.0)
        text = registry.render()
        assert "# HELP repro_jobs_total Jobs run" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{status="ok"} 1' in text
        assert 'repro_jobs_total{status="error"} 2' in text
        assert "repro_queue_depth 7" in text
        assert 'repro_solve_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_solve_seconds_bucket{le="1"} 2' in text
        assert 'repro_solve_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_solve_seconds_count 3" in text

    def test_registry_is_idempotent_but_kind_safe(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x", "x")
        assert registry.counter("repro_x", "x") is a
        with pytest.raises(ValueError):
            registry.gauge("repro_x", "x")

    def test_sync_executor_stats_flattens(self):
        registry = MetricsRegistry()
        sync_executor_stats(
            registry,
            {
                "queued": 3,
                "mode": "distributed",
                "cache": {"artifacts": {"hits": 5, "misses": 1}},
                "workers": {"123": {"hits": 2}},
            },
        )
        text = registry.render()
        assert "repro_queued 3" in text
        assert "repro_cache_artifacts_hits 5" in text
        assert 'repro_mode_info{value="distributed"} 1' in text
        assert 'repro_worker_cache{counter="hits",worker="123"} 2' in text

    def test_sync_worker_stats(self):
        registry = MetricsRegistry()
        stats = WorkerStats(worker="w1")
        stats.completed = 4
        stats.cache = {"artifacts": {"hits": 3, "misses": 1}}
        sync_worker_stats(registry, stats)
        text = registry.render()
        assert 'repro_worker_completed{worker="w1"} 4' in text
        assert (
            'repro_worker_cache{counter="artifacts_hits",worker="w1"} 3'
            in text
        )

    def test_http_endpoint_scrapes(self):
        registry = MetricsRegistry()
        registry.gauge("repro_up", "liveness").set(1)
        refreshed = []
        with MetricsServer(
            registry, port=0, refresh=lambda: refreshed.append(1)
        ) as server:
            body = urllib.request.urlopen(server.url, timeout=5).read()
            assert b"repro_up 1" in body
            assert refreshed  # refresh hook ran before render
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    server.url.rsplit("/", 1)[0] + "/nope", timeout=5
                )
            assert server.scrapes >= 1


class TestTracingIsObservational:
    def test_sequential_results_byte_identical_with_trace(self, tmp_path):
        from repro.service.serialization import result_signature

        job = _job(bound=3)
        plain = SequentialExecutor().submit(job).result()
        trace = tmp_path / "trace.jsonl"
        with TraceWriter(trace) as tracer:
            traced = SequentialExecutor(tracer=tracer).submit(job).result()
        assert result_signature(traced) == result_signature(plain)
        events = read_trace(trace)
        assert {"submitted", "solve", "done"} <= {e["event"] for e in events}

    def test_batch_rows_identical_with_trace(self, tmp_path):
        manifest = tmp_path / "jobs.jsonl"
        rows = [
            {
                "id": f"j{k}",
                "log": "loan:15",
                "constraints": [{"type": "max_group_size", "bound": k}],
            }
            for k in (3, 4)
        ]
        manifest.write_text(
            "".join(json.dumps(row) + "\n" for row in rows), encoding="utf-8"
        )
        from repro.service import load_manifest

        jobs = load_manifest(manifest)
        plain = run_batch(jobs, workers=1)
        trace = tmp_path / "trace.jsonl"
        traced = run_batch(jobs, workers=1, trace=trace)
        keep = (
            "id", "log", "fingerprint", "cached", "feasible",
            "distance", "num_candidates", "num_groups", "engine",
        )
        strip = lambda row: {k: row.get(k) for k in keep}
        assert [strip(r) for r in traced.rows] == [
            strip(r) for r in plain.rows
        ]
        assert read_trace(trace)

    def test_pool_executor_traces_lifecycle(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with PoolExecutor(workers=2, trace=trace) as pool:
            handles = [pool.submit(_job(bound=k)) for k in (3, 4)]
            for handle in handles:
                handle.result()
        events = read_trace(trace)
        names = {e["event"] for e in events}
        assert {"submitted", "queued", "claimed", "done"} <= names
        done = [e for e in events if e["event"] == "done"]
        assert all("seconds" in e for e in done)
