"""Unit tests for the dataset substrate (trees, play-out, collection)."""

import pytest

from repro.datasets.attributes import ORIGIN_KEY, AttributeSpec, enrich_log
from repro.datasets.collection import TABLE_III_SPECS, build_collection, build_log
from repro.datasets.loan_process import (
    ALL_CLASSES,
    ORIGIN_OF,
    loan_application_log,
)
from repro.datasets.playout import playout, simulate_variants
from repro.datasets.process_tree import (
    Operator,
    ProcessTree,
    TreeSpec,
    leaf,
    loop,
    par,
    random_tree,
    seq,
    xor,
)
from repro.eventlog.events import ROLE_KEY, TIMESTAMP_KEY
from repro.exceptions import EventLogError


class TestProcessTree:
    def test_leaf_and_operator_exclusive(self):
        with pytest.raises(EventLogError):
            ProcessTree(label="a", operator=Operator.SEQ, children=[leaf("b")])
        with pytest.raises(EventLogError):
            ProcessTree()

    def test_loop_arity(self):
        with pytest.raises(EventLogError):
            ProcessTree(operator=Operator.LOOP, children=[leaf("a")])

    def test_leaves_in_order(self):
        tree = seq(leaf("a"), xor(leaf("b"), leaf("c")), leaf("d"))
        assert tree.leaves() == ["a", "b", "c", "d"]

    def test_depth(self):
        tree = seq(leaf("a"), xor(leaf("b"), leaf("c")))
        assert tree.depth() == 3

    def test_random_tree_has_requested_leaves(self):
        tree = random_tree(TreeSpec(num_activities=12), seed=3)
        assert len(tree.leaves()) == 12
        assert len(set(tree.leaves())) == 12

    def test_random_tree_deterministic(self):
        spec = TreeSpec(num_activities=9)
        assert repr(random_tree(spec, seed=1)) == repr(random_tree(spec, seed=1))
        assert repr(random_tree(spec, seed=1)) != repr(random_tree(spec, seed=2))


class TestPlayout:
    def test_seq_order(self):
        variants = simulate_variants(seq(leaf("a"), leaf("b")), 5, seed=0)
        assert all(variant == ["a", "b"] for variant in variants)

    def test_xor_picks_one(self):
        variants = simulate_variants(xor(leaf("a"), leaf("b")), 50, seed=0)
        assert all(variant in (["a"], ["b"]) for variant in variants)
        assert {tuple(v) for v in variants} == {("a",), ("b",)}

    def test_and_interleaves(self):
        variants = simulate_variants(par(leaf("a"), leaf("b")), 50, seed=0)
        assert {tuple(v) for v in variants} == {("a", "b"), ("b", "a")}

    def test_loop_repeats(self):
        tree = loop(leaf("a"), leaf("r"), repeat_probability=0.9)
        variants = simulate_variants(tree, 50, seed=0)
        assert any(len(variant) > 1 for variant in variants)
        # Structure: a (r a)*
        for variant in variants:
            assert variant[0] == "a"
            assert len(variant) % 2 == 1

    def test_playout_builds_log(self):
        log = playout(seq(leaf("a"), leaf("b")), 7, seed=0)
        assert len(log) == 7
        assert log.classes == frozenset({"a", "b"})
        assert log[0].case_id == "case_0"

    def test_playout_deterministic(self):
        tree = random_tree(TreeSpec(num_activities=8), seed=5)
        log_a = playout(tree, 20, seed=9)
        log_b = playout(tree, 20, seed=9)
        assert [t.variant() for t in log_a] == [t.variant() for t in log_b]


class TestEnrichment:
    def test_attaches_all_attributes(self):
        log = playout(seq(leaf("a"), leaf("b")), 5, seed=0)
        enriched = enrich_log(log, seed=0)
        event = enriched[0][0]
        assert ROLE_KEY in event.attributes
        assert ORIGIN_KEY in event.attributes
        assert event["duration"] > 0
        assert event["cost"] > 0
        assert event.timestamp is not None

    def test_class_level_attributes_constant_per_class(self):
        log = playout(seq(leaf("a"), leaf("b")), 30, seed=0)
        enriched = enrich_log(log, seed=0)
        roles = {
            event.event_class: set() for trace in enriched for event in trace
        }
        for trace in enriched:
            for event in trace:
                roles[event.event_class].add(event[ROLE_KEY])
        assert all(len(values) == 1 for values in roles.values())

    def test_timestamps_increase_within_trace(self):
        log = playout(seq(leaf("a"), leaf("b"), leaf("c")), 5, seed=0)
        enriched = enrich_log(log, seed=0)
        for trace in enriched:
            stamps = [event.timestamp for event in trace]
            assert stamps == sorted(stamps)

    def test_original_log_not_mutated(self):
        log = playout(seq(leaf("a")), 3, seed=0)
        enrich_log(log, seed=0)
        assert TIMESTAMP_KEY not in log[0][0].attributes

    def test_deterministic(self):
        log = playout(seq(leaf("a"), leaf("b")), 5, seed=0)
        first = enrich_log(log, seed=4)
        second = enrich_log(log, seed=4)
        assert first[0][0]["duration"] == second[0][0]["duration"]


class TestCollection:
    def test_thirteen_specs(self):
        assert len(TABLE_III_SPECS) == 13
        assert len({spec.name for spec in TABLE_III_SPECS}) == 13

    def test_build_log_caps(self):
        spec = TABLE_III_SPECS[0]
        log = build_log(spec, max_traces=25)
        assert len(log) == 25

    def test_class_cap(self):
        spec = next(s for s in TABLE_III_SPECS if s.num_classes >= 40)
        log = build_log(spec, max_traces=30, max_classes=10)
        assert len(log.classes) <= 10

    def test_collection_keys(self):
        logs = build_collection(max_traces=10)
        assert set(logs) == {spec.name for spec in TABLE_III_SPECS}

    def test_logs_have_constraint_attributes(self):
        logs = build_collection(max_traces=10)
        for log in logs.values():
            event = log[0][0]
            assert ROLE_KEY in event.attributes
            assert "duration" in event.attributes


class TestLoanLog:
    def test_24_classes_from_three_systems(self, loan_log):
        assert len(ALL_CLASSES) == 24
        assert loan_log.classes <= set(ALL_CLASSES)
        origins = {ORIGIN_OF[cls] for cls in loan_log.classes}
        assert origins == {"A", "O", "W"}

    def test_every_event_carries_origin(self, loan_log):
        for trace in loan_log:
            for event in trace:
                assert event["origin"] == ORIGIN_OF[event.event_class]

    def test_starts_with_create(self, loan_log):
        assert all(trace.classes[0] == "A_Create" for trace in loan_log)

    def test_deterministic(self):
        log_a = loan_application_log(10, seed=3)
        log_b = loan_application_log(10, seed=3)
        assert [t.variant() for t in log_a] == [t.variant() for t in log_b]

    def test_complex_dfg(self, loan_log):
        from repro.eventlog.dfg import compute_dfg

        dfg = compute_dfg(loan_log)
        # The case-study's point: a spaghetti-grade DFG.
        assert len(dfg.edge_counts) > 30
