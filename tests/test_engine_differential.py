"""Differential tests: the compiled engine must equal the Python reference.

The integer-encoded hot path (:mod:`repro.core.encoding`) promises
*identical* outputs, not approximately-equal ones: byte-identical
instances, bitwise-identical Eq. 1 distances, the same candidate sets
from Algorithm 2 (whose beam ordering is distance-sensitive), the same
exclusive merges, and the same final groupings.  This suite checks those
promises on the paper's running example, the loan case study, and the
fuzz logs of ``test_fuzz_pipeline``, across all three instance-splitting
policies.
"""

import itertools
import random

import pytest
from hypothesis import given, settings

from test_fuzz_pipeline import log_strategy

from repro.constraints import (
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroupSize,
    MinInstanceAggregate,
)
from repro.core.candidates import exhaustive_candidates
from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import default_beam_width, dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.encoding import (
    HAVE_NUMPY,
    CompiledDistanceFunction,
    CompiledInstanceIndex,
    CompiledLog,
)
from repro.core.exclusive import merge_exclusive_candidates
from repro.core.gecco import Gecco, GeccoConfig
from repro.core.instances import POLICIES, InstanceIndex, instances_in_log
from repro.eventlog.events import ROLE_KEY

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def _sample_groups(log, max_size=3, limit=400):
    classes = sorted(log.classes)
    combos = [
        frozenset(combo)
        for size in range(1, max_size + 1)
        for combo in itertools.combinations(classes, size)
    ]
    if len(combos) > limit:
        combos = random.Random(20220510).sample(combos, limit)
    return combos


@pytest.fixture(scope="module")
def logs(running_log, loan_log):
    return {"running": running_log, "loan": loan_log}


class TestInstanceParity:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("log_name", ["running", "loan"])
    def test_instances_byte_identical(self, logs, log_name, policy):
        log = logs[log_name]
        compiled = CompiledLog(log)
        for group in _sample_groups(log):
            reference = instances_in_log(log, group, policy=policy)
            got, distinct = compiled.instances(group, policy=policy)
            assert got == reference
            # Byte-identical means plain python ints, not numpy scalars.
            for (trace_index, positions) in got:
                assert type(trace_index) is int
                assert all(type(p) is int for p in positions)
            # The distinct counts match the materialized instances.
            assert distinct == [
                len({log[t][p].event_class for p in positions})
                for t, positions in reference
            ]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_gap_limit_parameter(self, running_log, policy):
        compiled = CompiledLog(running_log)
        for gap_limit in (0, 1, 2):
            for group in _sample_groups(running_log, max_size=2, limit=60):
                assert (
                    compiled.instances(group, policy=policy, gap_limit=gap_limit)[0]
                    == instances_in_log(
                        running_log, group, policy=policy, gap_limit=gap_limit
                    )
                )


class TestDistanceParity:
    @pytest.mark.parametrize("log_name", ["running", "loan"])
    def test_distances_bitwise_identical(self, logs, log_name):
        log = logs[log_name]
        reference = DistanceFunction(log)
        compiled = CompiledDistanceFunction(log)
        groups = _sample_groups(log)
        compiled.prime(groups)
        for group in groups:
            assert compiled.group_distance(group) == reference.group_distance(
                group
            ), group

    def test_fig7_value_exact(self, running_log):
        from repro.datasets import PAPER_OPTIMAL_GROUPS

        compiled = CompiledDistanceFunction(running_log)
        assert compiled.grouping_distance(PAPER_OPTIMAL_GROUPS) == pytest.approx(
            3.0833333, abs=1e-6
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_distances_identical_per_policy(self, running_log, policy):
        reference = DistanceFunction(
            running_log, InstanceIndex(running_log, policy=policy)
        )
        compiled = CompiledDistanceFunction(
            running_log, CompiledInstanceIndex(running_log, policy=policy)
        )
        for group in _sample_groups(running_log, max_size=3, limit=120):
            assert compiled.group_distance(group) == reference.group_distance(
                group
            ), (policy, group)


class TestCandidateParity:
    @pytest.mark.parametrize("beam", [None, 3, "auto"])
    @pytest.mark.parametrize("log_name", ["running", "loan"])
    def test_dfg_candidates_identical(self, logs, log_name, beam):
        log = logs[log_name]
        constraints = ConstraintSet(
            [MaxGroupSize(5), MaxDistinctClassAttribute(ROLE_KEY, 2)]
        )
        beam_width = default_beam_width(log) if beam == "auto" else beam
        reference = dfg_candidates(log, constraints, beam_width=beam_width)
        compiled = dfg_candidates(
            log, constraints, beam_width=beam_width, compiled=CompiledLog(log)
        )
        assert compiled.groups == reference.groups
        assert compiled.stats.paths_considered == reference.stats.paths_considered
        assert compiled.stats.iterations == reference.stats.iterations

    def test_dfg_candidates_identical_with_instance_constraints(self, running_log):
        constraints = ConstraintSet(
            [MaxGroupSize(4), MinInstanceAggregate("duration", "sum", 0.0)]
        )
        reference = dfg_candidates(running_log, constraints, beam_width=5)
        compiled = dfg_candidates(
            running_log,
            constraints,
            beam_width=5,
            compiled=CompiledLog(running_log),
        )
        assert compiled.groups == reference.groups

    def test_exclusive_merge_identical(self, running_log, role_constraints):
        base = dfg_candidates(running_log, role_constraints).groups
        checker = GroupChecker(running_log, role_constraints)
        reference, _ = merge_exclusive_candidates(running_log, base, checker)
        compiled, _ = merge_exclusive_candidates(
            running_log, base, checker, compiled=CompiledLog(running_log)
        )
        assert compiled == reference

    def test_exhaustive_with_compiled_index_identical(self, running_log):
        constraints = ConstraintSet([MaxGroupSize(3)])
        reference = exhaustive_candidates(running_log, constraints)
        checker = GroupChecker(
            running_log, constraints, CompiledInstanceIndex(running_log)
        )
        compiled = exhaustive_candidates(running_log, constraints, checker=checker)
        assert compiled.groups == reference.groups


class TestPipelineParity:
    def _results(self, log, constraints, **config):
        results = {}
        for engine in ("python", "compiled"):
            results[engine] = Gecco(
                constraints, GeccoConfig(engine=engine, **config)
            ).abstract(log)
        return results["python"], results["compiled"]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_running_example_identical(self, running_log, role_constraints, policy):
        ref, com = self._results(
            running_log, role_constraints, instance_policy=policy
        )
        assert ref.feasible == com.feasible
        assert set(ref.grouping.groups) == set(com.grouping.groups)
        assert ref.distance == com.distance
        assert [t.classes for t in ref.abstracted_log] == [
            t.classes for t in com.abstracted_log
        ]

    def test_loan_log_identical(self, loan_log):
        constraints = ConstraintSet([MaxGroupSize(4)])
        ref, com = self._results(loan_log, constraints, beam_width="auto")
        assert ref.feasible == com.feasible
        assert set(ref.grouping.groups) == set(com.grouping.groups)
        assert ref.distance == com.distance

    def test_paper_distance_through_pipeline(self, running_log, role_constraints):
        _, com = self._results(running_log, role_constraints)
        assert com.distance == pytest.approx(3.0833333, abs=1e-6)


class TestFuzzParity:
    @given(log=log_strategy)
    @settings(max_examples=30, deadline=None)
    def test_fuzz_candidates_and_grouping_identical(self, log):
        constraints = ConstraintSet([MaxGroupSize(3)])
        reference = dfg_candidates(log, constraints)
        compiled = dfg_candidates(log, constraints, compiled=CompiledLog(log))
        assert compiled.groups == reference.groups

        ref = Gecco(constraints, GeccoConfig(engine="python", solver="bnb")).abstract(log)
        com = Gecco(constraints, GeccoConfig(engine="compiled", solver="bnb")).abstract(log)
        assert ref.feasible == com.feasible
        if ref.feasible:
            assert set(ref.grouping.groups) == set(com.grouping.groups)
            assert ref.distance == com.distance
            assert [t.classes for t in ref.abstracted_log] == [
                t.classes for t in com.abstracted_log
            ]

    @given(log=log_strategy)
    @settings(max_examples=20, deadline=None)
    def test_fuzz_instances_and_distances_identical(self, log):
        compiled = CompiledLog(log)
        reference = DistanceFunction(log)
        compiled_distance = CompiledDistanceFunction(
            log, CompiledInstanceIndex(log, compiled)
        )
        for policy in POLICIES:
            for group in _sample_groups(log, max_size=2, limit=40):
                assert (
                    compiled.instances(group, policy=policy)[0]
                    == instances_in_log(log, group, policy=policy)
                )
        for group in _sample_groups(log, max_size=3, limit=60):
            assert compiled_distance.group_distance(
                group
            ) == reference.group_distance(group)
