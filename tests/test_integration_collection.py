"""Integration tests: the full pipeline across the synthetic collection.

These exercise GECCO end to end on several collection logs and check
the invariants that must hold for *any* feasible abstraction problem —
exact cover, constraint satisfaction of the produced grouping, event
conservation in the abstracted log, and agreement between solver
backends.
"""

import pytest

from repro.constraints import class_attribute_view
from repro.core.gecco import Gecco, GeccoConfig
from repro.core.instances import InstanceIndex
from repro.datasets.collection import build_collection
from repro.experiments.configs import constraint_set_for_log


@pytest.fixture(scope="module")
def logs():
    return {
        name: log
        for name, log in build_collection(max_traces=30, max_classes=9).items()
        if name in ("road_fines", "credit", "sepsis", "bpic13", "wabo")
    }


@pytest.mark.parametrize("set_name", ["A", "BL1", "Gr"])
def test_grouping_invariants_across_logs(logs, set_name):
    for log_name, log in logs.items():
        constraints = constraint_set_for_log(set_name, log)
        result = Gecco(
            constraints, GeccoConfig(strategy="dfg", beam_width="auto")
        ).abstract(log)
        if not result.feasible:
            continue
        grouping = result.grouping

        # Exact cover.
        covered = sorted(cls for group in grouping for cls in group)
        assert covered == sorted(log.classes), (log_name, set_name)

        # Every selected group satisfies the per-group constraints.
        view = class_attribute_view(log)
        index = InstanceIndex(log)
        for group in grouping:
            assert constraints.check_class_constraints(group, view), (
                log_name, set_name, sorted(group),
            )
            assert constraints.check_instance_constraints(
                group, index.events(group)
            ), (log_name, set_name, sorted(group))

        # Grouping constraints hold for the grouping size.
        assert constraints.check_grouping_size(len(grouping))


def test_abstracted_logs_conserve_traces(logs):
    for log_name, log in logs.items():
        constraints = constraint_set_for_log("BL1", log)
        result = Gecco(constraints, GeccoConfig(strategy="dfg")).abstract(log)
        if not result.feasible:
            continue
        abstracted = result.abstracted_log
        # One abstracted trace per original trace...
        assert len(abstracted) == len(log), log_name
        # ... each non-empty and no longer than its original.
        for original, lifted in zip(log, abstracted):
            assert 1 <= len(lifted) <= len(original), log_name


def test_backends_agree_across_collection(logs):
    for log_name, log in logs.items():
        constraints = constraint_set_for_log("BL1", log)
        scipy_result = Gecco(
            constraints, GeccoConfig(strategy="dfg", solver="scipy")
        ).abstract(log)
        bnb_result = Gecco(
            constraints, GeccoConfig(strategy="dfg", solver="bnb")
        ).abstract(log)
        assert scipy_result.feasible == bnb_result.feasible, log_name
        if scipy_result.feasible:
            assert scipy_result.distance == pytest.approx(
                bnb_result.distance, abs=1e-6
            ), log_name


def test_dfg_candidates_subset_of_exhaustive_across_logs(logs):
    from repro.core.candidates import exhaustive_candidates
    from repro.core.dfg_candidates import dfg_candidates

    for log_name, log in logs.items():
        constraints = constraint_set_for_log("BL1", log)
        dfg_result = dfg_candidates(log, constraints)
        exhaustive_result = exhaustive_candidates(log, constraints, timeout=30)
        if exhaustive_result.stats.timed_out:
            continue
        assert dfg_result.groups <= exhaustive_result.groups, log_name


def test_exhaustive_objective_never_worse(logs):
    for log_name, log in logs.items():
        constraints = constraint_set_for_log("BL1", log)
        dfg_result = Gecco(constraints, GeccoConfig(strategy="dfg")).abstract(log)
        exh_result = Gecco(constraints, GeccoConfig.exhaustive()).abstract(log)
        if dfg_result.feasible and exh_result.feasible:
            assert exh_result.distance <= dfg_result.distance + 1e-9, log_name
