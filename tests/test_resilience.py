"""The resilience layer: deadlines, admission control, retries, breakers.

Resilience decides *whether and where* a job runs, never *what* it
computes: a job that fits its budget is byte-identical to the
unbudgeted run, a job that does not fails **typed**
(:class:`DeadlineExceeded` / :class:`Overloaded`) — never a hang,
never a silently degraded result.
"""

import json
import socket
import threading
import time

import pytest

from repro.constraints import ConstraintSet, MaxGroupSize
from repro.exceptions import ReproError
from repro.service import (
    AbstractionJob,
    LogRef,
    PoolExecutor,
    SequentialExecutor,
    make_executor,
    serve_socket,
)
from repro.service.dist import DistributedExecutor
from repro.service.resilience import (
    AdmissionController,
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    DegradingExecutor,
    Overloaded,
    RetryPolicy,
    TokenBucket,
)
from repro.service.serialization import result_signature


class FakeClock:
    """A hand-cranked monotonic clock for deterministic policy tests."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _job(size=3, **kwargs):
    return AbstractionJob(
        log=LogRef.builtin("running_example"),
        constraints=ConstraintSet([MaxGroupSize(size)]),
        job_id=f"re-size{size}",
        **kwargs,
    )


def _expired_job(size=3, **kwargs):
    """A job whose pinned deadline is already five seconds in the past."""
    job = _job(size, deadline_ms=1.0, **kwargs)
    job.deadline_at = time.time() - 5.0
    return job


# -- Deadline ----------------------------------------------------------------


class TestDeadline:
    def test_after_ms_pins_an_absolute_instant(self):
        deadline = Deadline.after_ms(1500.0, now=1000.0)
        assert deadline.at == 1001.5
        assert deadline.remaining(now=1000.5) == pytest.approx(1.0)
        assert not deadline.expired(now=1001.0)
        assert deadline.expired(now=1001.5)

    def test_check_raises_typed_with_stage_and_overrun(self):
        deadline = Deadline(at=time.time() - 2.0)
        with pytest.raises(DeadlineExceeded, match="before artifact build"):
            deadline.check("artifact build")
        assert isinstance(DeadlineExceeded("x"), ReproError)

    def test_cap_bounds_solver_time_limits(self):
        generous = Deadline(at=time.time() + 100.0)
        assert generous.cap(5.0) == 5.0
        tight = Deadline(at=time.time() + 0.5)
        assert tight.cap(100.0) <= 0.5
        # Expired: a tiny positive limit, never zero/negative (the
        # stage-boundary check is what surfaces expiry).
        expired = Deadline(at=time.time() - 1.0)
        assert 0.0 < expired.cap(100.0) <= 1e-3
        assert expired.cap(None) > 0.0

    def test_job_pins_deadline_once_and_roundtrips(self):
        job = _job(deadline_ms=5000.0, tenant="acme")
        before = time.time()
        first = job.deadline()
        assert before + 4.0 < first.at < before + 6.0
        assert job.deadline().at == first.at  # pinned, not re-derived
        row = job.to_dict()
        assert row["deadline_ms"] == 5000.0 and row["tenant"] == "acme"
        clone = AbstractionJob.from_dict(row)
        assert clone.deadline_ms == 5000.0 and clone.tenant == "acme"

    def test_policy_fields_do_not_enter_the_fingerprint(self):
        assert (
            _job().fingerprint().full
            == _job(deadline_ms=1000.0, tenant="acme").fingerprint().full
        )

    def test_deadline_ms_must_be_positive(self):
        with pytest.raises(ReproError, match="deadline_ms"):
            _job(deadline_ms=-1.0)


# -- RetryPolicy -------------------------------------------------------------


class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay=0.05, multiplier=2.0,
                             max_delay=0.3, jitter=0.5, seed="x")
        delays = [policy.delay(attempt, key="k") for attempt in range(5)]
        assert delays == [policy.delay(attempt, key="k") for attempt in range(5)]
        assert delays != [RetryPolicy(seed="y", attempts=5, max_delay=0.3)
                          .delay(a, key="k") for a in range(5)]
        for attempt, delay in enumerate(delays):
            base = min(0.05 * 2.0 ** attempt, 0.3)
            assert base <= delay <= base * 1.5

    def test_call_retries_then_succeeds(self):
        attempts, slept, retried = [], [], []
        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"
        policy = RetryPolicy(attempts=3, base_delay=0.01)
        value = policy.call(
            flaky, key="op",
            on_retry=lambda exc, attempt: retried.append(attempt),
            sleep=slept.append,
        )
        assert value == "done"
        assert len(attempts) == 3 and retried == [0, 1]
        assert slept == [policy.delay(0, "op"), policy.delay(1, "op")]

    def test_exhausted_attempts_reraise_the_last_failure(self):
        def always(): raise OSError("permanent")
        with pytest.raises(OSError, match="permanent"):
            RetryPolicy(attempts=2, base_delay=0.0).call(
                always, sleep=lambda _: None
            )

    def test_non_retryable_types_propagate_immediately(self):
        calls = []
        def wrong_type():
            calls.append(1)
            raise ValueError("not transient")
        with pytest.raises(ValueError):
            RetryPolicy(attempts=5, base_delay=0.0).call(
                wrong_type, retry_on=(OSError,), sleep=lambda _: None
            )
        assert len(calls) == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(attempts=0)


# -- TokenBucket / AdmissionController ---------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2.0, refill_rate=1.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()  # burst spent
        clock.advance(1.0)
        assert bucket.try_acquire()  # one token refilled
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(2.0)  # capped at capacity

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ReproError):
            TokenBucket(capacity=0.0, refill_rate=1.0)


class TestAdmissionController:
    def test_per_tenant_quotas_and_counters(self):
        clock = FakeClock()
        control = AdmissionController(
            quotas={"acme": (1.0, 0.0)}, clock=clock
        )
        assert control.admit("acme")
        assert not control.admit("acme")  # quota spent, never refills
        assert control.admit("other")  # no bucket, never throttled
        assert control.admit(None)
        snapshot = control.snapshot()
        assert snapshot["admitted"] == 3 and snapshot["shed_quota"] == 1

    def test_default_quota_covers_unknown_tenants(self):
        control = AdmissionController(
            default_quota=(1.0, 0.0), clock=FakeClock()
        )
        assert control.admit("anyone")
        assert not control.admit("anyone")
        assert control.admit("fresh-tenant")  # its own lazy bucket

    def test_invalid_max_load_rejected(self):
        with pytest.raises(ReproError):
            AdmissionController(max_load=0)


# -- CircuitBreaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_and_probes_half_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0,
                                 clock=clock)
        assert breaker.state == BREAKER_CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN and breaker.trips == 1
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # everyone else still rejected
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED and breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == BREAKER_OPEN and breaker.trips == 2
        assert breaker.snapshot()["state"] == BREAKER_OPEN


# -- DegradingExecutor -------------------------------------------------------


class _StubExecutor:
    """A recording in-memory stand-in for an executor tier."""

    def __init__(self, fail=False):
        self.fail = fail
        self.submissions = 0
        self.shutdowns = 0

    def submit(self, job, priority=None):
        self.submissions += 1
        if self.fail:
            raise ConnectionError("broker unreachable")
        return ("handled", job)

    def submit_call(self, fn, *args, priority=0, **kwargs):
        return self.submit(fn)

    def stats(self):
        return {"stub": True}

    def shutdown(self, wait=True):
        self.shutdowns += 1


class TestDegradingExecutor:
    def test_failures_fall_back_then_trip_the_breaker(self):
        clock = FakeClock()
        primary = _StubExecutor(fail=True)
        fallback = _StubExecutor()
        wrapper = DegradingExecutor(
            primary, lambda: fallback,
            breaker=CircuitBreaker(failure_threshold=2, reset_timeout=60.0,
                                   clock=clock),
        )
        assert wrapper.submit("job-1") == ("handled", "job-1")
        assert wrapper.submit("job-2") == ("handled", "job-2")
        assert primary.submissions == 2 and fallback.submissions == 2
        # Breaker now open: the primary is out of the request path.
        assert wrapper.submit("job-3") == ("handled", "job-3")
        assert primary.submissions == 2 and fallback.submissions == 3
        stats = wrapper.stats()
        assert stats["resilience"]["breaker"]["state"] == BREAKER_OPEN
        assert stats["resilience"]["degraded_submissions"] == 3
        assert stats["resilience"]["fallback_active"] is True
        wrapper.shutdown()
        assert primary.shutdowns == 1 and fallback.shutdowns == 1

    def test_healthy_primary_never_builds_the_fallback(self):
        primary = _StubExecutor()
        built = []
        with DegradingExecutor(primary, lambda: built.append(1)) as wrapper:
            assert wrapper.submit("job") == ("handled", "job")
            assert wrapper.stats()["resilience"]["fallback_active"] is False
        assert not built

    def test_policy_failures_do_not_count_against_the_breaker(self):
        class _Shedding(_StubExecutor):
            def submit(self, job, priority=None):
                raise Overloaded("max_load")

        wrapper = DegradingExecutor(
            _Shedding(), _StubExecutor,
            breaker=CircuitBreaker(failure_threshold=1, clock=FakeClock()),
        )
        with pytest.raises(Overloaded):
            wrapper.submit("job")
        assert wrapper.breaker.state == BREAKER_CLOSED


# -- deadline propagation through the executors ------------------------------


def _sleep_call(seconds, cache=None):
    """Module-level worker-occupying call (picklable by reference)."""
    time.sleep(seconds)
    return "slept"


class TestExecutorDeadlines:
    def test_sequential_expired_deadline_fails_typed(self):
        handle = SequentialExecutor().submit(_expired_job())
        with pytest.raises(DeadlineExceeded):
            handle.result()

    def test_generous_deadline_is_byte_identical(self):
        reference = SequentialExecutor().submit(_job()).result()
        budgeted = SequentialExecutor().submit(
            _job(deadline_ms=60_000.0)
        ).result()
        assert result_signature(budgeted) == result_signature(reference)

    def test_pipeline_checks_deadline_at_entry(self):
        from repro.core.gecco import Gecco
        from repro.datasets import running_example_log

        with pytest.raises(DeadlineExceeded, match="pipeline start"):
            Gecco(ConstraintSet([MaxGroupSize(3)])).abstract(
                running_example_log(), deadline=Deadline(at=time.time() - 1.0)
            )

    def test_pool_job_expired_while_queued_fails_at_dispatch(self):
        with PoolExecutor(workers=1) as pool:
            blocker = pool.submit_call(_sleep_call, 0.6)
            queued = pool.submit(_job(deadline_ms=100.0))
            with pytest.raises(DeadlineExceeded, match="while queued"):
                queued.result(timeout=30)
            assert blocker.result(timeout=30) == "slept"

    def test_distributed_no_workers_never_hangs(self, tmp_path):
        with DistributedExecutor(
            f"fs://{tmp_path / 'q'}", workers=0, poll_interval=0.02
        ) as pool:
            handle = pool.submit(_job(deadline_ms=200.0))
            started = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                handle.result(timeout=30)
            assert time.perf_counter() - started < 10.0


# -- admission control on the executors --------------------------------------


class TestExecutorAdmission:
    def test_pool_sheds_lowest_priority_job_at_max_load(self):
        with PoolExecutor(workers=1, max_load=2) as pool:
            blocker = pool.submit_call(_sleep_call, 0.8)
            low = pool.submit(_job(3), priority=0)
            high = pool.submit(_job(5), priority=5)
            with pytest.raises(Overloaded, match="shed at max_load"):
                low.result(timeout=30)
            assert high.result(timeout=60).feasible
            assert blocker.result(timeout=30) == "slept"
            assert pool.stats()["admission"]["shed_load"] == 1

    def test_pool_sheds_incoming_when_nothing_ranks_below(self):
        with PoolExecutor(workers=1, max_load=1) as pool:
            blocker = pool.submit_call(_sleep_call, 0.5)
            incoming = pool.submit(_job(3), priority=0)
            with pytest.raises(Overloaded, match="job shed"):
                incoming.result(timeout=30)
            assert blocker.result(timeout=30) == "slept"

    def test_pool_tenant_quota_sheds_typed(self):
        control = AdmissionController(
            quotas={"acme": (1.0, 0.0)}, clock=FakeClock()
        )
        with PoolExecutor(workers=1, admission=control) as pool:
            first = pool.submit(_job(3, tenant="acme"))
            second = pool.submit(_job(5, tenant="acme"))
            with pytest.raises(Overloaded, match="admission quota"):
                second.result(timeout=30)
            assert first.result(timeout=60).feasible

    def test_cache_hits_are_served_without_charging_quota(self):
        control = AdmissionController(
            quotas={"acme": (1.0, 0.0)}, clock=FakeClock()
        )
        with PoolExecutor(workers=1, admission=control) as pool:
            pool.submit(_job(3, tenant="acme")).result(timeout=60)
            repeat = pool.submit(_job(3, tenant="acme"))
            assert repeat.result(timeout=30).feasible
            assert repeat.cached is True

    def test_distributed_sheds_at_max_load(self, tmp_path):
        # No workers: submitted jobs stay in flight, so the load bound
        # is hit deterministically.
        with DistributedExecutor(
            f"fs://{tmp_path / 'q'}", workers=0, poll_interval=0.02,
            max_load=1,
        ) as pool:
            low = pool.submit(_job(3), priority=0)
            high = pool.submit(_job(5), priority=5)
            with pytest.raises(Overloaded, match="shed at max_load"):
                low.result(timeout=30)
            assert not high.done()
            assert pool.stats()["admission"]["shed_load"] == 1

    def test_make_executor_wires_degradation_and_admission(self, tmp_path):
        executor = make_executor(
            workers=0, broker=f"fs://{tmp_path / 'q'}", max_load=4
        )
        try:
            assert isinstance(executor, DegradingExecutor)
            assert executor.primary.admission.max_load == 4
            assert "resilience" in executor.stats()
        finally:
            executor.shutdown()
        plain = make_executor(
            workers=0, broker=f"fs://{tmp_path / 'q2'}", degrade=False
        )
        try:
            assert isinstance(plain, DistributedExecutor)
        finally:
            plain.shutdown()


# -- serve loop socket timeout -----------------------------------------------


class TestServeSocketTimeout:
    def test_hung_client_is_dropped_and_serving_continues(self):
        executor = SequentialExecutor()
        # Ephemeral port; on_bound fires once the socket is listening,
        # so connecting never races the bind.
        bound = []
        listening = threading.Event()

        def on_bound(address):
            bound.append(address)
            listening.set()

        served = []
        server = threading.Thread(
            target=lambda: served.append(
                serve_socket("127.0.0.1", 0, executor,
                             max_requests=1, conn_timeout=0.3,
                             on_bound=on_bound)
            ),
            daemon=True,
        )
        server.start()
        assert listening.wait(timeout=10)
        port = bound[0][1]
        # A client that connects and then goes silent: without the
        # connection timeout this would block the accept loop forever.
        hung = socket.create_connection(("127.0.0.1", port), timeout=5)
        time.sleep(0.5)  # past conn_timeout: the server must move on
        healthy = socket.create_connection(("127.0.0.1", port), timeout=5)
        healthy.sendall(b'{"op": "ping"}\n')
        response = json.loads(healthy.makefile("r").readline())
        assert response == {"ok": True, "pong": True}
        healthy.close()
        hung.close()
        server.join(timeout=10)
        assert served == [1]
