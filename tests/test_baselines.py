"""Unit tests for the three baselines (BL_Q, BL_P, BL_G)."""

import numpy as np
import pytest

from repro.baselines.graph_query import (
    PathQuery,
    abstract_with_graph_query,
    dfg_to_graph,
    query_candidates,
    query_from_constraints,
)
from repro.baselines.greedy import abstract_with_greedy, greedy_grouping
from repro.baselines.partitioning import (
    abstract_with_partitioning,
    kmeans,
    normalized_adjacency,
    spectral_grouping,
)
from repro.constraints import (
    CannotLink,
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroups,
    MaxGroupSize,
)
from repro.core.dfg_candidates import dfg_candidates
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import ROLE_KEY, log_from_variants
from repro.exceptions import ConstraintError, GroupingError


class TestGraphQueryEngine:
    def test_path_node_sets(self):
        log = log_from_variants([["a", "b", "c"]])
        graph = dfg_to_graph(compute_dfg(log))
        candidates = query_candidates(graph, PathQuery(max_length=2))
        assert frozenset({"a", "b"}) in candidates
        assert frozenset({"b", "c"}) in candidates
        assert frozenset({"a", "b", "c"}) not in candidates  # length bound

    def test_forbidden_pairs(self):
        log = log_from_variants([["a", "b", "c"]])
        graph = dfg_to_graph(compute_dfg(log))
        query = PathQuery(max_length=3, forbidden_pairs={frozenset({"a", "b"})})
        candidates = query_candidates(graph, query)
        assert frozenset({"a", "b"}) not in candidates
        assert frozenset({"b", "c"}) in candidates

    def test_node_predicate(self):
        log = log_from_variants([["a", "b", "c"]])
        graph = dfg_to_graph(compute_dfg(log))
        query = PathQuery(max_length=3, node_predicate=lambda n: n != "b")
        candidates = query_candidates(graph, query)
        assert all("b" not in group for group in candidates)

    def test_query_from_constraints_translates_bounds(self, running_log):
        constraints = ConstraintSet([MaxGroupSize(5), CannotLink("rcp", "acc")])
        query = query_from_constraints(running_log, constraints)
        assert query.max_length == 5
        assert frozenset({"rcp", "acc"}) in query.forbidden_pairs

    def test_query_from_class_attribute_constraint(self, running_log):
        constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
        query = query_from_constraints(running_log, constraints)
        # clerk/manager mixes are forbidden pairwise.
        assert frozenset({"rcp", "acc"}) in query.forbidden_pairs
        assert frozenset({"rcp", "ckc"}) not in query.forbidden_pairs

    def test_pipeline_solves_running_example(self, running_log):
        constraints = ConstraintSet(
            [MaxGroupSize(5), MaxDistinctClassAttribute(ROLE_KEY, 1)]
        )
        result = abstract_with_graph_query(running_log, constraints)
        assert result.feasible
        # Grouping satisfies the constraints it can express.
        for group in result.grouping:
            assert len(group) <= 5

    def test_fewer_candidates_than_gecco(self, running_log, role_constraints):
        """BL_Q misses exclusive merges: {ckc, ckt} is path-unreachable."""
        constraints = ConstraintSet(
            [MaxGroupSize(8), MaxDistinctClassAttribute(ROLE_KEY, 1)]
        )
        graph = dfg_to_graph(compute_dfg(running_log))
        query = query_from_constraints(running_log, constraints)
        candidates = query_candidates(graph, query)
        assert frozenset({"ckc", "ckt"}) not in candidates


class TestSpectralPartitioning:
    def test_kmeans_deterministic_and_complete(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(20, 3))
        labels_a = kmeans(points, 4, seed=5)
        labels_b = kmeans(points, 4, seed=5)
        assert np.array_equal(labels_a, labels_b)
        assert set(labels_a) == {0, 1, 2, 3}

    def test_kmeans_invalid_k(self):
        points = np.zeros((3, 2))
        with pytest.raises(GroupingError):
            kmeans(points, 5)

    def test_adjacency_symmetric_normalized(self, running_log):
        dfg = compute_dfg(running_log)
        classes = sorted(running_log.classes)
        adjacency = normalized_adjacency(dfg, classes)
        assert np.allclose(adjacency, adjacency.T)
        assert adjacency.max() <= 2.0 + 1e-9

    def test_spectral_grouping_is_exact_cover(self, running_log):
        grouping = spectral_grouping(running_log, 4)
        assert len(grouping) == 4
        assert frozenset().union(*grouping.groups) == running_log.classes

    def test_too_many_groups_rejected(self, running_log):
        with pytest.raises(GroupingError):
            spectral_grouping(running_log, 100)

    def test_pipeline(self, running_log):
        result = abstract_with_partitioning(running_log, 4)
        assert result.feasible
        assert len(result.grouping) == 4
        assert result.abstracted_log.classes  # produced a log


class TestGreedy:
    def test_improves_over_singletons(self, running_log, role_constraints):
        from repro.core.distance import DistanceFunction

        grouping, stats = greedy_grouping(running_log, role_constraints)
        distance = DistanceFunction(running_log)
        singleton_cost = sum(
            distance.group_distance({cls}) for cls in running_log.classes
        )
        assert distance.grouping_distance(grouping) <= singleton_cost
        assert stats.merges > 0

    def test_respects_constraints(self, running_log, role_constraints):
        from repro.constraints import class_attribute_view

        grouping, _ = greedy_grouping(running_log, role_constraints)
        view = class_attribute_view(running_log)
        for group in grouping:
            for constraint in role_constraints.class_based:
                assert constraint.check(group, view)

    def test_rejects_grouping_constraints(self, running_log):
        constraints = ConstraintSet([MaxGroups(3)])
        with pytest.raises(ConstraintError):
            greedy_grouping(running_log, constraints)

    def test_suboptimal_compared_to_gecco(self, running_log, role_constraints):
        """The Table VII story: greedy >= GECCO's optimal distance."""
        from repro.core.gecco import Gecco, GeccoConfig

        gecco = Gecco(role_constraints, GeccoConfig.exhaustive()).abstract(running_log)
        greedy = abstract_with_greedy(running_log, role_constraints)
        assert greedy.feasible and gecco.feasible
        assert greedy.distance >= gecco.distance - 1e-9

    def test_pipeline(self, running_log, role_constraints):
        result = abstract_with_greedy(running_log, role_constraints)
        assert result.feasible
        assert result.abstracted_log is not None
