"""End-to-end fuzzing of the full GECCO pipeline on random logs.

Property-based integration tests: for arbitrary small logs and a mix of
constraint shapes, the pipeline must either produce a valid, constraint-
satisfying abstraction or report infeasibility with diagnostics — never
crash, never emit an invalid grouping.
"""

from hypothesis import given, settings, strategies as st

from repro.constraints import (
    CannotLink,
    ConstraintSet,
    MaxGroups,
    MaxGroupSize,
    MinGroupSize,
)
from repro.core.gecco import Gecco, GeccoConfig
from repro.eventlog.events import log_from_variants

CLASSES = ["a", "b", "c", "d", "e"]

variant_strategy = st.lists(st.sampled_from(CLASSES), min_size=1, max_size=7)
log_strategy = st.lists(variant_strategy, min_size=1, max_size=7).map(
    log_from_variants
)


def constraint_strategy():
    return st.lists(
        st.one_of(
            st.builds(MaxGroupSize, st.integers(min_value=1, max_value=5)),
            st.builds(MinGroupSize, st.integers(min_value=1, max_value=2)),
            st.builds(MaxGroups, st.integers(min_value=1, max_value=6)),
            st.builds(
                CannotLink,
                st.just("a"),
                st.sampled_from(["b", "c", "d", "e"]),
            ),
        ),
        min_size=0,
        max_size=3,
    ).map(ConstraintSet)


@given(log=log_strategy, constraints=constraint_strategy())
@settings(max_examples=40, deadline=None)
def test_pipeline_never_crashes_and_output_is_valid(log, constraints):
    result = Gecco(constraints, GeccoConfig(strategy="dfg", solver="bnb")).abstract(log)
    if result.feasible:
        grouping = result.grouping
        covered = sorted(cls for group in grouping for cls in group)
        assert covered == sorted(log.classes)
        # Class-based constraints hold on every selected group.
        for group in grouping:
            assert constraints.check_class_constraints(group, None)
        assert constraints.check_grouping_size(len(grouping))
        assert len(result.abstracted_log) == len(log)
        for original, lifted in zip(log, result.abstracted_log):
            assert 1 <= len(lifted) <= len(original)
    else:
        assert result.abstracted_log is log
        assert result.infeasibility is not None


@given(log=log_strategy)
@settings(max_examples=20, deadline=None)
def test_strategies_agree_on_feasibility(log):
    constraints = ConstraintSet([MaxGroupSize(3)])
    dfg_result = Gecco(constraints, GeccoConfig(strategy="dfg")).abstract(log)
    exh_result = Gecco(constraints, GeccoConfig.exhaustive()).abstract(log)
    # The exhaustive candidate set is a superset: whenever the DFG-based
    # instantiation solves, so must the exhaustive one, at no worse cost.
    if dfg_result.feasible:
        assert exh_result.feasible
        assert exh_result.distance <= dfg_result.distance + 1e-9


@given(log=log_strategy)
@settings(max_examples=20, deadline=None)
def test_start_complete_no_shorter_than_complete(log):
    constraints = ConstraintSet([])
    complete = Gecco(
        constraints, GeccoConfig(abstraction_strategy="complete")
    ).abstract(log)
    both = Gecco(
        constraints, GeccoConfig(abstraction_strategy="start_complete")
    ).abstract(log)
    if complete.feasible and both.feasible:
        for trace_c, trace_b in zip(complete.abstracted_log, both.abstracted_log):
            assert len(trace_b) >= len(trace_c)
