"""Unit tests for the Grouping value object."""

import pytest

from repro.core.grouping import Grouping, singleton_grouping
from repro.exceptions import GroupingError

UNIVERSE = frozenset({"a", "b", "c", "d"})


class TestValidation:
    def test_valid_exact_cover(self):
        grouping = Grouping([{"a", "b"}, {"c"}, {"d"}], UNIVERSE)
        assert len(grouping) == 3

    def test_rejects_overlap(self):
        with pytest.raises(GroupingError, match="disjoint"):
            Grouping([{"a", "b"}, {"b", "c"}, {"d"}], UNIVERSE)

    def test_rejects_uncovered(self):
        with pytest.raises(GroupingError, match="uncovered"):
            Grouping([{"a", "b"}], UNIVERSE)

    def test_rejects_unknown_classes(self):
        with pytest.raises(GroupingError, match="unknown"):
            Grouping([{"a", "b", "c", "d", "zz"}], UNIVERSE)

    def test_rejects_empty_group(self):
        with pytest.raises(GroupingError, match="empty"):
            Grouping([set(), UNIVERSE], UNIVERSE)


class TestLabels:
    def test_singletons_keep_class_name(self):
        grouping = Grouping([{"a"}, {"b", "c", "d"}], UNIVERSE)
        assert grouping.label_of({"a"}) == "a"

    def test_multi_groups_get_activity_labels(self):
        grouping = Grouping([{"a", "b"}, {"c", "d"}], UNIVERSE)
        labels = {grouping.label_of({"a", "b"}), grouping.label_of({"c", "d"})}
        assert labels == {"Activity_1", "Activity_2"}

    def test_explicit_labels(self):
        grouping = Grouping(
            [{"a", "b"}, {"c"}, {"d"}],
            UNIVERSE,
            labels={frozenset({"a", "b"}): "clerk_phase"},
        )
        assert grouping.label_of({"a", "b"}) == "clerk_phase"

    def test_relabel(self):
        grouping = Grouping([{"a", "b"}, {"c"}, {"d"}], UNIVERSE)
        renamed = grouping.relabel({frozenset({"a", "b"}): "X"})
        assert renamed.label_of({"a", "b"}) == "X"
        assert grouping.label_of({"a", "b"}) != "X"

    def test_label_of_unknown_group(self):
        grouping = Grouping([{"a", "b"}, {"c"}, {"d"}], UNIVERSE)
        with pytest.raises(GroupingError):
            grouping.label_of({"a"})


class TestQueries:
    def test_group_of(self):
        grouping = Grouping([{"a", "b"}, {"c"}, {"d"}], UNIVERSE)
        assert grouping.group_of("a") == frozenset({"a", "b"})
        assert grouping.label_of_class("a") == grouping.label_of({"a", "b"})

    def test_group_of_unknown(self):
        grouping = Grouping([UNIVERSE], UNIVERSE)
        with pytest.raises(GroupingError):
            grouping.group_of("zz")

    def test_contains(self):
        grouping = Grouping([{"a", "b"}, {"c"}, {"d"}], UNIVERSE)
        assert {"a", "b"} in grouping
        assert {"a"} not in grouping

    def test_size_reduction(self):
        grouping = Grouping([{"a", "b"}, {"c", "d"}], UNIVERSE)
        assert grouping.size_reduction == pytest.approx(0.5)

    def test_non_trivial_groups(self):
        grouping = Grouping([{"a", "b"}, {"c"}, {"d"}], UNIVERSE)
        assert grouping.non_trivial_groups() == [frozenset({"a", "b"})]


class TestSingletonGrouping:
    def test_structure(self):
        grouping = singleton_grouping(UNIVERSE)
        assert len(grouping) == 4
        assert all(len(group) == 1 for group in grouping)
        assert grouping.size_reduction == 1.0
