"""Executor behavior: sequential/pool equivalence, coalescing, offload."""

import time

import pytest

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute, MaxGroupSize
from repro.core import encoding
from repro.core.gecco import Gecco, GeccoConfig
from repro.eventlog.events import ROLE_KEY, Event, Trace
from repro.exceptions import ReproError
from repro.service import (
    AbstractionJob,
    LogRef,
    PoolExecutor,
    SequentialExecutor,
    result_signature,
)


def jobs_grid():
    """Running example × three constraint sets, loan × two sets."""
    jobs = []
    for bound in (3, 4, 5):
        jobs.append(
            AbstractionJob(
                log=LogRef.builtin("running_example"),
                constraints=ConstraintSet([MaxGroupSize(8), MaxGroupSize(bound)]),
                job_id=f"re-{bound}",
            )
        )
    for bound in (4, 5):
        jobs.append(
            AbstractionJob(
                log=LogRef.builtin("loan:20"),
                constraints=ConstraintSet([MaxGroupSize(bound)]),
                config=GeccoConfig(beam_width="auto"),
                job_id=f"loan-{bound}",
            )
        )
    return jobs


def _hold_worker(seconds, cache=None):
    """Occupy a pool worker (module-level: picklable by reference)."""
    time.sleep(seconds)
    return seconds


class TestSequentialExecutor:
    def test_matches_direct_pipeline(self):
        executor = SequentialExecutor()
        for job in jobs_grid():
            served = executor.submit(job).result()
            direct = Gecco(job.constraints, job.config).abstract(job.log.resolve())
            assert result_signature(served) == result_signature(direct)

    def test_handle_protocol(self):
        executor = SequentialExecutor()
        handle = executor.submit(jobs_grid()[0])
        assert handle.done()
        assert handle.cached is False
        repeat = executor.submit(jobs_grid()[0])
        assert repeat.cached is True
        assert result_signature(repeat.result()) == result_signature(handle.result())

    def test_error_is_raised_on_await(self, tmp_path):
        executor = SequentialExecutor()
        handle = executor.submit(
            AbstractionJob(
                log=LogRef.path(str(tmp_path / "missing.xes")),
                constraints=ConstraintSet([MaxGroupSize(5)]),
            )
        )
        assert handle.done()
        with pytest.raises(Exception):
            handle.result()


class TestPoolExecutor:
    def test_pool_byte_identical_to_sequential(self):
        jobs = jobs_grid()
        sequential = SequentialExecutor()
        expected = [result_signature(sequential.submit(job).result()) for job in jobs]
        with PoolExecutor(workers=2) as pool:
            handles = [pool.submit(job) for job in jobs]
            actual = [result_signature(handle.result(timeout=300)) for handle in handles]
        assert actual == expected

    def test_parent_cache_serves_repeats(self):
        job = jobs_grid()[0]
        with PoolExecutor(workers=2) as pool:
            first = pool.submit(job)
            first.result(timeout=300)
            repeat = pool.submit(job)
            assert repeat.done()  # no round-trip to a worker
            assert repeat.cached is True

    def test_inflight_coalescing(self):
        job = jobs_grid()[1]
        with PoolExecutor(workers=2) as pool:
            first = pool.submit(job)
            second = pool.submit(job)
            a = first.result(timeout=300)
            b = second.result(timeout=300)
        assert result_signature(a) == result_signature(b)
        assert second.cached is True

    def test_worker_artifact_reuse_counters(self):
        jobs = jobs_grid()[:3]  # one log, three constraint sets
        with PoolExecutor(workers=1) as pool:
            for handle in [pool.submit(job) for job in jobs]:
                handle.result(timeout=300)
            totals = pool.stats()["workers_total"]
        assert totals["artifact_builds"] == 1
        assert totals["artifact_hits"] == 2

    def test_priorities_dispatch_high_first(self):
        _base, lo, hi = jobs_grid()[:3]
        with PoolExecutor(workers=1) as pool:
            # Hold the only worker so both jobs are queued when it
            # frees up: the priority heap must then dispatch hi first.
            blocker = pool.submit_call(_hold_worker, 0.3)
            handles = {
                "lo": pool.submit(lo, priority=0),
                "hi": pool.submit(hi, priority=10),
            }
            order = []
            deadline = time.time() + 300
            while len(order) < 2 and time.time() < deadline:
                for name, handle in handles.items():
                    if handle.done() and name not in order:
                        order.append(name)
                time.sleep(0.0005)
            blocker.result(timeout=300)
        assert order == ["hi", "lo"]

    def test_worker_error_propagates(self, tmp_path):
        bad = AbstractionJob(
            log=LogRef.path(str(tmp_path / "nope.csv")),
            constraints=ConstraintSet([MaxGroupSize(5)]),
        )
        with PoolExecutor(workers=1) as pool:
            handle = pool.submit(bad)
            with pytest.raises(Exception):
                handle.result(timeout=300)

    def test_submit_after_shutdown_rejected(self):
        pool = PoolExecutor(workers=1)
        pool.shutdown()
        with pytest.raises(ReproError):
            pool.submit(jobs_grid()[0])

    def test_affinity_routes_log_to_one_worker(self):
        """Cache-aware scheduling: one artifact build per log, not per
        (worker, log) — jobs sharing a log-prefix fingerprint all land
        on the worker that claimed the prefix."""
        jobs = jobs_grid()  # 3 running-example jobs + 2 loan jobs
        num_logs = 2
        with PoolExecutor(workers=2) as pool:
            for handle in [pool.submit(job) for job in jobs]:
                handle.result(timeout=300)
            stats = pool.stats()
        assert stats["scheduler"]["affinity"] is True
        assert stats["scheduler"]["prefix_claims"] == num_logs
        # The acceptance counter: without affinity the bound is
        # workers × logs (= 4) builds; with it, exactly one per log.
        assert stats["workers_total"]["artifact_builds"] == num_logs
        assert stats["scheduler"]["affinity_hits"] == len(jobs) - num_logs

    def test_affinity_can_be_disabled(self):
        jobs = jobs_grid()
        with PoolExecutor(workers=2, affinity=False) as pool:
            results = pool.map(jobs)
            stats = pool.stats()
        assert len(results) == len(jobs)
        assert stats["scheduler"]["affinity"] is False
        # Spread routing may rebuild per worker, never more than that.
        assert stats["workers_total"]["artifact_builds"] <= 2 * 2

    def test_submit_call_runs_on_workers_with_cache(self):
        from repro.selection2 import Component, solve_component_task

        component = Component(
            classes=("x", "y"),
            candidates=(frozenset({"x"}), frozenset({"y"}), frozenset({"x", "y"})),
            costs=(1.0, 1.0, 0.5),
        )
        with PoolExecutor(workers=1) as pool:
            first = pool.submit_call(
                solve_component_task, component, None, None, "bnb", None
            )
            solution, cached = first.result(timeout=300)
            assert not cached
            assert solution.groups == ((("x", "y"),))
            # Same cell again: served from the worker's selection tier.
            repeat = pool.submit_call(
                solve_component_task, component, None, None, "bnb", None
            )
            _solution, cached = repeat.result(timeout=300)
            assert cached
            assert pool.stats()["workers_total"]["selection_hits"] >= 1

    def test_submit_call_sequential_uses_own_cache(self):
        from repro.selection2 import Component, solve_component_task

        component = Component(
            classes=("x",), candidates=(frozenset({"x"}),), costs=(1.0,)
        )
        executor = SequentialExecutor()
        _, cached = executor.submit_call(
            solve_component_task, component, None, None, "bnb", None
        ).result()
        assert not cached
        _, cached = executor.submit_call(
            solve_component_task, component, None, None, "bnb", None
        ).result()
        assert cached
        assert executor.cache.stats.selection.hits == 1

    def test_map_preserves_submission_order(self):
        jobs = jobs_grid()
        with PoolExecutor(workers=2) as pool:
            results = pool.map(jobs)
        sequential = SequentialExecutor()
        expected = [sequential.submit(job).result() for job in jobs]
        assert [result_signature(r) for r in results] == [
            result_signature(r) for r in expected
        ]


class TestArtifactGuards:
    def test_mismatched_log_rejected(self, running_log, loan_log):
        from repro.core.gecco import prepare_artifacts
        from repro.exceptions import ConstraintError

        config = GeccoConfig()
        artifacts = prepare_artifacts(loan_log, config)
        with pytest.raises(ConstraintError, match="different log"):
            Gecco(ConstraintSet([MaxGroupSize(5)]), config).abstract(
                running_log, artifacts
            )

    def test_mismatched_policy_rejected(self, running_log):
        from repro.core.gecco import prepare_artifacts
        from repro.exceptions import ConstraintError

        artifacts = prepare_artifacts(running_log, GeccoConfig())
        config = GeccoConfig(instance_policy="none")
        with pytest.raises(ConstraintError, match="do not match config"):
            Gecco(ConstraintSet([MaxGroupSize(5)]), config).abstract(
                running_log, artifacts
            )

    def test_matching_prebuilt_artifacts_accepted(self, running_log):
        from repro.core.gecco import prepare_artifacts

        config = GeccoConfig()
        artifacts = prepare_artifacts(running_log, config)
        constraints = ConstraintSet([MaxGroupSize(5)])
        shared = Gecco(constraints, config).abstract(running_log, artifacts)
        fresh = Gecco(constraints, config).abstract(running_log)
        assert result_signature(shared) == result_signature(fresh)


class TestEngineFallback:
    def test_fallback_warns_and_records_engine(self, running_log, monkeypatch):
        monkeypatch.setattr(encoding, "HAVE_NUMPY", False)
        constraints = ConstraintSet([MaxGroupSize(5)])
        with pytest.warns(RuntimeWarning, match="numpy is unavailable"):
            result = Gecco(constraints, GeccoConfig(engine="compiled")).abstract(
                running_log
            )
        assert result.engine == "python"
        assert result.feasible

    def test_no_warning_when_python_requested(self, running_log, recwarn):
        constraints = ConstraintSet([MaxGroupSize(5)])
        result = Gecco(constraints, GeccoConfig(engine="python")).abstract(running_log)
        assert result.engine == "python"
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]

    def test_compiled_engine_recorded(self, running_log):
        if not encoding.HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        constraints = ConstraintSet([MaxGroupSize(5)])
        result = Gecco(constraints, GeccoConfig(engine="compiled")).abstract(running_log)
        assert result.engine == "compiled"


class TestRunnerExecutorRouting:
    def test_rows_match_sequential_runner(self, running_log):
        from repro.experiments.runner import run_experiment

        logs = {"running_example": running_log}
        sets = ("BL1", "Gr")
        approaches = ("DFGk", "BLG")
        plain = run_experiment(logs, sets, approaches, candidate_timeout=30.0)
        routed = run_experiment(
            logs,
            sets,
            approaches,
            candidate_timeout=30.0,
            executor=SequentialExecutor(),
        )
        assert len(plain.rows) == len(routed.rows)
        for a, b in zip(plain.rows, routed.rows):
            assert (a.log_name, a.constraint_set, a.approach) == (
                b.log_name,
                b.constraint_set,
                b.approach,
            )
            assert a.solved == b.solved
            assert a.size_red == b.size_red
            assert a.complexity_red == b.complexity_red
            assert a.silhouette == b.silhouette
            assert a.num_groups == b.num_groups
            assert a.num_candidates == b.num_candidates


class TestStreamingOffload:
    def _drifting_stream(self):
        """A stream that changes behavior midway (forces re-grouping)."""
        phase_a = [
            Trace([Event(c, {ROLE_KEY: "clerk"}) for c in ("a", "b", "c")])
            for _ in range(12)
        ]
        phase_b = [
            Trace([Event(c, {ROLE_KEY: "clerk"}) for c in ("x", "y", "z")])
            for _ in range(12)
        ]
        return phase_a + phase_b

    def test_offloaded_regrouping_adopted(self):
        from repro.streaming.abstractor import StreamingAbstractor

        constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
        streamer = StreamingAbstractor(
            constraints,
            GeccoConfig(strategy="dfg"),
            window_size=20,
            min_traces=5,
            check_every=1,
            drift_threshold=0.2,
            executor=SequentialExecutor(),
        )
        for trace in self._drifting_stream():
            streamer.process(trace)
        streamer.flush()
        assert streamer.grouping is not None
        assert streamer.stats.regroupings >= 1
        assert streamer.epochs
        # The adopted grouping covers the latest phase's classes.
        covered = {cls for group in streamer.grouping for cls in group}
        assert {"x", "y", "z"} <= covered

    def test_offload_matches_synchronous_grouping(self):
        from repro.streaming.abstractor import StreamingAbstractor

        constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])

        def build(executor):
            return StreamingAbstractor(
                constraints,
                GeccoConfig(strategy="dfg"),
                window_size=20,
                min_traces=5,
                check_every=1,
                drift_threshold=0.2,
                executor=executor,
            )

        synchronous = build(None)
        offloaded = build(SequentialExecutor())
        for trace in self._drifting_stream():
            synchronous.process(trace)
            offloaded.process(trace)
        offloaded.flush()
        assert synchronous.grouping is not None and offloaded.grouping is not None
        assert set(synchronous.grouping.groups) == set(offloaded.grouping.groups)
