"""Unit tests for group-instance detection (the ``inst`` function)."""

import pytest

from repro.core.instances import (
    InstanceIndex,
    instance_events,
    instances_in_log,
    instances_in_trace,
)
from repro.eventlog.events import Event, Trace, log_from_variants
from repro.exceptions import EventLogError


def trace_of(*classes):
    return Trace([Event(cls) for cls in classes])


class TestRepeatSplit:
    def test_simple_projection_single_instance(self):
        trace = trace_of("a", "b", "c", "d")
        instances = instances_in_trace(trace, frozenset({"a", "c"}))
        assert instances == [[0, 2]]

    def test_paper_sigma4_example(self, running_log):
        # inst(σ4, {rcp, ckc, ckt}) = {⟨rcp, ckc⟩, ⟨rcp, ckt⟩}
        sigma4 = running_log[3]
        instances = instances_in_trace(sigma4, frozenset({"rcp", "ckc", "ckt"}))
        rendered = [
            [sigma4[p].event_class for p in positions] for positions in instances
        ]
        assert rendered == [["rcp", "ckc"], ["rcp", "ckt"]]

    def test_split_on_repeat(self):
        trace = trace_of("a", "b", "a", "b")
        instances = instances_in_trace(trace, frozenset({"a", "b"}))
        assert instances == [[0, 1], [2, 3]]

    def test_no_group_events(self):
        trace = trace_of("x", "y")
        assert instances_in_trace(trace, frozenset({"a"})) == []

    def test_unknown_policy(self):
        with pytest.raises(EventLogError):
            instances_in_trace(trace_of("a"), frozenset({"a"}), policy="zigzag")


class TestNonePolicy:
    def test_projection_is_single_instance(self):
        trace = trace_of("a", "b", "a", "b")
        instances = instances_in_trace(trace, frozenset({"a", "b"}), policy="none")
        assert instances == [[0, 1, 2, 3]]


class TestGapPolicy:
    def test_splits_on_large_gap(self):
        trace = trace_of("a", "x", "x", "x", "x", "a")
        instances = instances_in_trace(
            trace, frozenset({"a"}), policy="gap", gap_limit=3
        )
        assert instances == [[0], [5]]

    def test_keeps_within_gap(self):
        trace = trace_of("a", "x", "a")
        instances = instances_in_trace(
            trace, frozenset({"a"}), policy="gap", gap_limit=3
        )
        assert instances == [[0, 2]]


class TestInstancesInLog:
    def test_only_relevant_traces_contribute(self):
        log = log_from_variants([["a", "b"], ["x", "y"], ["a"]])
        instances = instances_in_log(log, frozenset({"a"}))
        assert [(t, p) for t, p in instances] == [(0, [0]), (2, [0])]

    def test_instance_events_materialization(self):
        log = log_from_variants([["a", "b", "c"]])
        (trace_index, positions), = instances_in_log(log, frozenset({"a", "c"}))
        events = instance_events(log[trace_index], positions)
        assert [event.event_class for event in events] == ["a", "c"]


class TestInstanceIndex:
    def test_caches_positions(self, running_log):
        index = InstanceIndex(running_log)
        group = frozenset({"rcp", "ckc"})
        first = index.positions(group)
        second = index.positions(group)
        assert first is second
        assert index.cache_size() == 1

    def test_events_match_positions(self, running_log):
        index = InstanceIndex(running_log)
        group = frozenset({"acc"})
        events = index.events(group)
        assert all(e.event_class == "acc" for instance in events for e in instance)
        assert index.count(group) == 3  # acc occurs in σ1, σ3, σ4

    def test_count_of_repeating_group(self, running_log):
        index = InstanceIndex(running_log)
        # g_clrk1 has 5 instances: one in σ1..σ3 and two in σ4.
        assert index.count(frozenset({"rcp", "ckc", "ckt"})) == 5

    def test_policy_validated(self, running_log):
        with pytest.raises(EventLogError):
            InstanceIndex(running_log, policy="bogus")
