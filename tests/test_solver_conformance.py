"""Solver conformance & property harness for the Step-2 frontier.

Locks down the three solver-frontier behaviors:

* **LP-relaxation bound admissibility** — the dual-price lower bound of
  :class:`~repro.mip.branch_and_bound.SetPartitionSolver` never exceeds
  the true optimum on hypothesis-generated weighted set-partitioning
  instances, so enabling it can never change the returned selection.
* **Backend conformance** — ``bnb``, ``bnb + LP``, and HiGHS produce
  byte-identical canonical groupings (the lex-min tie-break) for every
  instance, including tied costs, Eq. 5 count bounds, and infeasible
  programs.
* **Race determinism** — the parallel bnb-vs-HiGHS race returns the
  same grouping under any seeded delay/fault schedule, including
  mid-solve cancellation of the losing branch-and-bound.
"""

from __future__ import annotations

import random
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SolverError
from repro.mip import scipy_backend
from repro.mip.branch_and_bound import (
    SetPartitionSolver,
    SolverCancelled,
    lexmin_optimal_selection,
)
from repro.mip.result import SolverStatus
from repro.selection2 import Component, solve_component
from repro.selection2.portfolio import race_component
from repro.selection2.stats import SelectionStats

needs_scipy = pytest.mark.skipif(
    not scipy_backend.HAVE_SCIPY, reason="scipy (HiGHS) not installed"
)


# -- instance generation & reference oracle -----------------------------


def brute_force(classes, candidates, costs, min_count=None, max_count=None):
    """``(cost, lex-min positions)`` of the optimal exact cover, or ``None``.

    Exhaustive enumeration over candidate subsets; costs are multiples
    of 0.5 so equal-cost comparisons are float-exact and the lex-min
    argmin among the optima is well-defined.
    """
    universe = frozenset(classes)
    n = len(candidates)
    best = None
    for bits in range(1 << n):
        positions = [i for i in range(n) if bits >> i & 1]
        if min_count is not None and len(positions) < min_count:
            continue
        if max_count is not None and len(positions) > max_count:
            continue
        covered: set = set()
        total = 0.0
        disjoint = True
        for position in positions:
            if covered & candidates[position]:
                disjoint = False
                break
            covered |= candidates[position]
            total += costs[position]
        if not disjoint or covered != universe:
            continue
        if (
            best is None
            or total < best[0]
            or (total == best[0] and positions < best[1])
        ):
            best = (total, positions)
    return best


@st.composite
def partition_instances(draw):
    """Random weighted set-partitioning instances, biased toward ties.

    Candidates are in the repo's canonical order (sorted by sorted
    member tuple); costs come from a small half-integer grid so
    equal-cost optima are common and the lex-min tie-break is
    exercised, not just tolerated.
    """
    num_classes = draw(st.integers(min_value=2, max_value=6))
    classes = [f"c{i}" for i in range(num_classes)]
    groups = draw(
        st.lists(
            st.sets(st.sampled_from(classes), min_size=1),
            min_size=1,
            max_size=10,
        )
    )
    if draw(st.booleans()):
        groups.extend({cls} for cls in classes)  # guarantee feasibility
    candidates = sorted(
        {frozenset(group) for group in groups}, key=lambda g: sorted(g)
    )
    costs = [
        draw(st.integers(min_value=0, max_value=6)) / 2.0 for _ in candidates
    ]
    max_count = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=num_classes))
    )
    return classes, candidates, costs, max_count


def _component(classes, candidates, costs) -> Component:
    return Component(
        classes=tuple(classes),
        candidates=tuple(candidates),
        costs=tuple(costs),
    )


def _dense_instance(num_classes=14, num_candidates=160, seed=7):
    """A dense instance whose bnb tree is big enough for LP cuts."""
    rng = random.Random(seed)
    classes = [f"c{i:02d}" for i in range(num_classes)]
    candidates = [frozenset([cls]) for cls in classes]
    seen = set(candidates)
    while len(candidates) < num_candidates:
        group = frozenset(rng.sample(classes, rng.randint(2, 4)))
        if group not in seen:
            seen.add(group)
            candidates.append(group)
    costs = [round(rng.uniform(1.0, 6.0) * 2) / 2.0 for _ in candidates]
    return classes, candidates, costs


def _canonical_positions(solver_result, classes, candidates, costs, max_count):
    positions = sorted(
        int(name[1:])
        for name in solver_result.selected()
        if name.startswith("g")
    )
    canonical = lexmin_optimal_selection(
        sorted(classes),
        list(candidates),
        list(costs),
        target=sum(costs[position] for position in positions),
        max_count=max_count,
    )
    return canonical if canonical is not None else positions


# -- LP bound admissibility ---------------------------------------------


@needs_scipy
@settings(max_examples=60, deadline=None)
@given(partition_instances())
def test_lp_bound_is_admissible(instance):
    classes, candidates, costs, max_count = instance
    reference = brute_force(classes, candidates, costs, max_count=max_count)
    solver = SetPartitionSolver(
        universe=classes,
        candidates=candidates,
        costs=costs,
        max_count=max_count,
    )
    solver._solve_lp_relaxation()
    if solver._dual is None:
        return  # LP unavailable/failed: nothing to certify
    root_bound = solver._dual_bound(frozenset())
    if reference is not None:
        # Admissibility at the root: the dual bound never exceeds the
        # optimum, so the optimum itself is never pruned.
        assert root_bound <= reference[0] + 1e-9


@needs_scipy
@settings(max_examples=60, deadline=None)
@given(partition_instances())
def test_lp_bound_preserves_exact_solution(instance):
    classes, candidates, costs, max_count = instance
    plain = SetPartitionSolver(
        universe=classes, candidates=candidates, costs=costs,
        max_count=max_count,
    ).solve()
    bounded = SetPartitionSolver(
        universe=classes, candidates=candidates, costs=costs,
        max_count=max_count, lp_bound=True,
    ).solve()
    assert plain.status is bounded.status
    if plain.status is SolverStatus.OPTIMAL:
        assert _canonical_positions(
            plain, classes, candidates, costs, max_count
        ) == _canonical_positions(bounded, classes, candidates, costs, max_count)
        assert bounded.nodes_explored <= plain.nodes_explored


def test_lp_bound_strictly_reduces_nodes():
    if not scipy_backend.HAVE_SCIPY:
        pytest.skip("scipy (HiGHS) not installed")
    classes, candidates, costs = _dense_instance()
    plain = SetPartitionSolver(
        universe=classes, candidates=candidates, costs=costs
    ).solve()
    bounded = SetPartitionSolver(
        universe=classes, candidates=candidates, costs=costs, lp_bound=True
    ).solve()
    assert plain.status is SolverStatus.OPTIMAL
    assert bounded.status is SolverStatus.OPTIMAL
    assert bounded.objective == pytest.approx(plain.objective)
    assert bounded.lp_bound_cuts > 0
    assert bounded.nodes_explored < plain.nodes_explored
    assert plain.lp_bound_cuts == 0


def test_lp_bound_off_without_scipy(monkeypatch):
    """The LP path degrades to the cost-share bound when scipy is absent."""
    monkeypatch.setattr(scipy_backend, "HAVE_SCIPY", False)
    classes, candidates, costs = _dense_instance(num_classes=8, num_candidates=40)
    solver = SetPartitionSolver(
        universe=classes, candidates=candidates, costs=costs, lp_bound=True
    )
    outcome = solver.solve()
    assert outcome.status is SolverStatus.OPTIMAL
    assert outcome.lp_bound_cuts == 0
    assert solver._dual is None


# -- backend conformance (bnb ± LP ≡ HiGHS, lex-min stability) ----------


@needs_scipy
@settings(max_examples=60, deadline=None)
@given(partition_instances())
def test_backends_byte_identical(instance):
    classes, candidates, costs, max_count = instance
    component = _component(classes, candidates, costs)
    reference = brute_force(classes, candidates, costs, max_count=max_count)
    outcomes = {
        backend: solve_component(component, backend=backend, max_count=max_count)
        for backend in ("bnb", "scipy", "auto")
    }
    bounded = SetPartitionSolver(
        universe=classes, candidates=candidates, costs=costs,
        max_count=max_count, lp_bound=True,
    ).solve()

    if reference is None:
        for backend, solution in outcomes.items():
            assert solution.status == SolverStatus.INFEASIBLE.value, backend
        assert bounded.status is SolverStatus.INFEASIBLE
        return

    expected_cost, expected_positions = reference
    expected_groups = tuple(
        tuple(sorted(candidates[position])) for position in expected_positions
    )
    for backend, solution in outcomes.items():
        assert solution.is_optimal, backend
        assert solution.objective == pytest.approx(expected_cost), backend
        # Byte-identical groupings: the canonical lex-min optimum,
        # regardless of which backend (or race) produced it.
        assert solution.groups == expected_groups, backend
    assert _canonical_positions(
        bounded, classes, candidates, costs, max_count
    ) == list(expected_positions)


@needs_scipy
@settings(max_examples=40, deadline=None)
@given(partition_instances(), st.randoms(use_true_random=False))
def test_lexmin_stable_under_candidate_shuffle(instance, rng):
    """The selected *groups* ignore the order candidates were generated in.

    Any presentation order, once canonically sorted (as every call site
    sorts), yields the same lex-min optimum — ties are broken by group
    content, never by arrival order.
    """
    classes, candidates, costs, max_count = instance
    paired = list(zip(candidates, costs))
    rng.shuffle(paired)
    resorted = sorted(paired, key=lambda pair: sorted(pair[0]))
    shuffled = _component(
        classes, [pair[0] for pair in resorted], [pair[1] for pair in resorted]
    )
    original = solve_component(
        _component(classes, candidates, costs), backend="bnb", max_count=max_count
    )
    again = solve_component(shuffled, backend="bnb", max_count=max_count)
    assert original.status == again.status
    assert original.groups == again.groups


# -- race determinism ---------------------------------------------------


class ChaosSchedule:
    """Seeded per-backend delay/fault injection for the race seam."""

    def __init__(self, delays=None, faults=()):
        self.delays = delays or {}
        self.faults = frozenset(faults)
        self.invoked: list[str] = []

    def __call__(self, name: str) -> None:
        self.invoked.append(name)
        if name in self.faults:
            raise RuntimeError(f"chaos fault injected into {name!r}")
        delay = self.delays.get(name, 0.0)
        if delay:
            time.sleep(delay)


@needs_scipy
def test_race_grouping_invariant_to_finish_order():
    classes, candidates, costs = _dense_instance(num_classes=9, num_candidates=48)
    component = _component(classes, candidates, costs)
    baseline = solve_component(component, backend="scipy")
    assert baseline.is_optimal

    schedules = [ChaosSchedule()]
    for seed in range(6):
        rng = random.Random(seed)
        schedules.append(
            ChaosSchedule(
                delays={
                    "bnb": rng.uniform(0.0, 0.02),
                    "scipy": rng.uniform(0.0, 0.02),
                }
            )
        )
    # One racer faulting must concede the race, not corrupt it.
    schedules.append(ChaosSchedule(faults=("bnb",)))
    schedules.append(ChaosSchedule(faults=("scipy",)))

    for schedule in schedules:
        raced = race_component(component, chaos=schedule)
        assert raced.raced
        assert raced.race_winner in ("bnb", "scipy")
        assert raced.is_optimal
        assert raced.groups == baseline.groups, vars(schedule)
        assert set(schedule.invoked) == {"bnb", "scipy"}


@needs_scipy
def test_race_survives_midsolve_cancellation():
    """A losing bnb deep in its tree is cancelled without changing groups."""
    classes, candidates, costs = _dense_instance(
        num_classes=16, num_candidates=220, seed=11
    )
    component = _component(classes, candidates, costs)
    baseline = solve_component(component, backend="scipy")
    raced = race_component(
        component, chaos=ChaosSchedule(delays={"bnb": 0.001})
    )
    assert raced.is_optimal
    assert raced.groups == baseline.groups


@needs_scipy
def test_race_both_backends_fail():
    classes, candidates, costs = _dense_instance(num_classes=5, num_candidates=12)
    component = _component(classes, candidates, costs)
    with pytest.raises(SolverError):
        race_component(
            component, chaos=ChaosSchedule(faults=("bnb", "scipy"))
        )


def test_cancel_event_aborts_search():
    classes, candidates, costs = _dense_instance()
    cancel = threading.Event()
    cancel.set()
    solver = SetPartitionSolver(
        universe=classes, candidates=candidates, costs=costs,
        cancel_event=cancel,
    )
    with pytest.raises(SolverCancelled):
        solver.solve()


@needs_scipy
def test_forced_race_through_solve_component():
    classes, candidates, costs = _dense_instance(num_classes=8, num_candidates=30)
    component = _component(classes, candidates, costs)
    sequential = solve_component(component, backend="auto", race=False)
    raced = solve_component(component, backend="auto", race=True)
    # ``auto`` keeps small components on warm bnb even when racing is
    # allowed; force the race path directly for the comparison too.
    direct = race_component(component)
    assert sequential.is_optimal and direct.is_optimal
    assert sequential.groups == raced.groups == direct.groups


# -- stats surfacing ----------------------------------------------------


def test_selection_stats_fold_race_and_lp_counters():
    stats = SelectionStats()
    from repro.selection2.portfolio import ComponentSolution

    stats.record_solution(
        ComponentSolution(
            status=SolverStatus.OPTIMAL.value,
            groups=(("a",),),
            objective=1.0,
            nodes=7,
            lp_cuts=3,
            raced=True,
            race_winner="scipy",
        )
    )
    stats.record_solution(
        ComponentSolution(
            status=SolverStatus.OPTIMAL.value,
            groups=(("b",),),
            objective=1.0,
            nodes=5,
        )
    )
    rendered = stats.as_dict()
    assert rendered["nodes_explored"] == 12
    assert rendered["lp_bound_cuts"] == 3
    assert rendered["races"] == 1
    assert rendered["race_winner"] == {"scipy": 1}
    back = SelectionStats.from_dict(rendered)
    assert back.nodes == 12
    assert back.lp_bound_cuts == 3
    assert back.races == 1
    assert back.race_winner == {"scipy": 1}
