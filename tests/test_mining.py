"""Unit tests for the mining substrate (discovery + complexity)."""

import pytest

from repro.eventlog.events import log_from_variants
from repro.exceptions import DiscoveryError
from repro.mining.complexity import (
    complexity_report,
    control_flow_complexity,
    split_contribution,
)
from repro.mining.discovery import DiscoveryParameters, discover_model
from repro.mining.model import SplitKind


class TestDiscovery:
    def test_sequential_model(self):
        log = log_from_variants([["a", "b", "c"]] * 5)
        model = discover_model(log)
        assert model.activities == frozenset({"a", "b", "c"})
        assert model.split_of("a") is SplitKind.NONE
        assert control_flow_complexity(model) == 0

    def test_xor_split_detected(self):
        log = log_from_variants({("a", "b", "d"): 5, ("a", "c", "d"): 5})
        model = discover_model(log)
        assert model.split_of("a") is SplitKind.XOR
        assert model.joins["d"] is SplitKind.XOR
        assert control_flow_complexity(model) == 2

    def test_and_split_detected(self):
        # b and c in both orders with balanced frequencies -> concurrent.
        log = log_from_variants({("a", "b", "c", "d"): 5, ("a", "c", "b", "d"): 5})
        model = discover_model(log)
        assert model.is_concurrent("b", "c")
        assert model.split_of("a") is SplitKind.AND
        assert control_flow_complexity(model) == 1

    def test_loop_not_marked_concurrent(self):
        # b>c dominates c>b heavily: unbalanced -> not concurrent.
        log = log_from_variants({("a", "b", "c", "d"): 9, ("a", "c", "b", "d"): 1})
        model = discover_model(log, DiscoveryParameters(epsilon=0.3))
        assert not model.is_concurrent("b", "c")

    def test_epsilon_widens_concurrency(self):
        log = log_from_variants({("a", "b", "c", "d"): 9, ("a", "c", "b", "d"): 1})
        model = discover_model(log, DiscoveryParameters(epsilon=1.0))
        assert model.is_concurrent("b", "c")

    def test_empty_log_rejected(self):
        with pytest.raises(DiscoveryError):
            discover_model(log_from_variants([]))

    def test_invalid_parameters(self):
        with pytest.raises(DiscoveryError):
            DiscoveryParameters(epsilon=1.5)
        with pytest.raises(DiscoveryError):
            DiscoveryParameters(eta=-0.1)

    def test_eta_filters_rare_edges(self):
        log = log_from_variants(
            {("a", "b", "d"): 20, ("a", "c", "d"): 20, ("a", "d"): 1}
        )
        full = discover_model(log, DiscoveryParameters(eta=0.0))
        filtered = discover_model(log, DiscoveryParameters(eta=0.9))
        assert len(filtered.edges) <= len(full.edges)

    def test_start_end_activities(self):
        log = log_from_variants([["a", "b"], ["a", "c"]])
        model = discover_model(log)
        assert model.start_activities == frozenset({"a"})
        assert model.end_activities == frozenset({"b", "c"})

    def test_deterministic(self, running_log):
        model_a = discover_model(running_log)
        model_b = discover_model(running_log)
        assert model_a.edges == model_b.edges
        assert model_a.splits == model_b.splits


class TestComplexity:
    def test_split_contributions(self):
        assert split_contribution(SplitKind.XOR, 3) == 3
        assert split_contribution(SplitKind.AND, 3) == 1
        assert split_contribution(SplitKind.OR, 3) == 7
        assert split_contribution(SplitKind.NONE, 1) == 0
        assert split_contribution(SplitKind.XOR, 1) == 0

    def test_or_contribution_capped(self):
        assert split_contribution(SplitKind.OR, 64) == (1 << 16) - 1

    def test_running_example_complexity_positive(self, running_log):
        model = discover_model(running_log)
        assert control_flow_complexity(model) > 0

    def test_report_fields(self, running_log):
        report = complexity_report(discover_model(running_log))
        assert report.num_activities == 8
        assert report.cfc >= 0
        assert report.size >= report.num_activities
        assert report.cnc == pytest.approx(report.num_edges / report.num_activities)

    def test_model_size_counts_gateways(self):
        log = log_from_variants({("a", "b", "d"): 5, ("a", "c", "d"): 5})
        model = discover_model(log)
        assert model.num_gateways == 2  # split at a, join at d
        assert model.size == 4 + 2
