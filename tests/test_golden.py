"""Golden regression tests: pin deterministic artifacts exactly.

These protect the reproduction's worked examples against silent
regressions: the running example's DFG DOT, the Fig. 3 abstracted DFG
edge set, and the collection's seeded determinism.
"""

import pytest

from repro.core.gecco import Gecco, GeccoConfig
from repro.datasets import running_example_log
from repro.datasets.collection import TABLE_III_SPECS, build_log
from repro.eventlog.dfg import compute_dfg
from repro.experiments.figures import dfg_to_ascii

RUNNING_EXAMPLE_DFG = """\
nodes: acc, arv, ckc, ckt, inf, prio, rcp, rej
  acc -> inf  [1]
  acc -> prio  [2]
  arv -> inf  [2]
  ckc -> acc  [2]
  ckc -> rej  [1]
  ckt -> acc  [1]
  ckt -> rej  [1]
  inf -> arv  [2]
  prio -> arv  [2]
  prio -> inf  [1]
  rcp -> ckc  [3]
  rcp -> ckt  [2]
  rej -> prio  [1]
  rej -> rcp  [1]"""


class TestGoldenRunningExample:
    def test_fig2_dfg_exact(self, running_log):
        assert dfg_to_ascii(compute_dfg(running_log)) == RUNNING_EXAMPLE_DFG

    def test_fig3_abstracted_edges_exact(self, running_log, role_constraints):
        result = Gecco(role_constraints, GeccoConfig()).abstract(running_log)
        labels = {
            frozenset({"rcp", "ckc", "ckt"}): "clrk1",
            frozenset({"prio", "inf", "arv"}): "clrk2",
        }
        grouping = result.grouping.relabel(labels)
        from repro.core.abstraction import abstract_log

        abstracted = abstract_log(running_log, grouping)
        dfg = compute_dfg(abstracted)
        assert dfg.edge_counts == {
            ("clrk1", "acc"): 3,
            ("clrk1", "rej"): 2,
            ("acc", "clrk2"): 3,
            ("rej", "clrk2"): 1,
            ("rej", "clrk1"): 1,
        }

    def test_trace_abstractions_exact(self, running_log, role_constraints):
        result = Gecco(role_constraints, GeccoConfig()).abstract(running_log)
        # Exact pin: abstracted trace lengths (σ4 keeps 5 activity
        # instances because clrk1 occurs twice).
        lengths = [len(trace) for trace in result.abstracted_log]
        assert lengths == [3, 3, 3, 5]


class TestGoldenCollection:
    @pytest.mark.parametrize("spec", TABLE_III_SPECS[:4], ids=lambda s: s.name)
    def test_seeded_logs_bitstable(self, spec):
        log_a = build_log(spec, max_traces=15)
        log_b = build_log(spec, max_traces=15)
        assert [t.variant() for t in log_a] == [t.variant() for t in log_b]
        for trace_a, trace_b in zip(log_a, log_b):
            for event_a, event_b in zip(trace_a, trace_b):
                assert event_a.attributes == event_b.attributes

    def test_known_first_variant(self):
        spec = next(spec for spec in TABLE_III_SPECS if spec.name == "credit")
        log = build_log(spec, max_traces=5)
        # The credit log is single-variant by construction (paper: 1 variant).
        assert len({trace.variant() for trace in log}) == 1
        assert len(log[0]) == 8
