"""Unit tests for the MIP substrate: model layer and both backends."""

import random

import pytest

from repro.exceptions import SolverError
from repro.mip.branch_and_bound import SetPartitionSolver
from repro.mip.model import EQ, GE, LE, BinaryProgram
from repro.mip.result import SolverStatus
from repro.mip import scipy_backend


class TestBinaryProgram:
    def test_duplicate_variable_rejected(self):
        program = BinaryProgram()
        program.add_variable("x", 1.0)
        with pytest.raises(SolverError):
            program.add_variable("x", 2.0)

    def test_unknown_variable_in_constraint(self):
        program = BinaryProgram()
        with pytest.raises(SolverError):
            program.add_constraint({"x": 1.0}, LE, 1.0)

    def test_unknown_sense(self):
        program = BinaryProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_constraint({"x": 1.0}, "<", 1.0)

    def test_objective_and_feasibility(self):
        program = BinaryProgram()
        program.add_variable("x", 2.0)
        program.add_variable("y", 3.0)
        program.add_constraint({"x": 1.0, "y": 1.0}, GE, 1.0)
        assert program.objective_value({"x": 1, "y": 0}) == 2.0
        assert program.is_feasible({"x": 1, "y": 0})
        assert not program.is_feasible({"x": 0, "y": 0})

    def test_eq_constraint_evaluation(self):
        program = BinaryProgram()
        program.add_variable("x")
        program.add_constraint({"x": 1.0}, EQ, 1.0)
        assert program.is_feasible({"x": 1})
        assert not program.is_feasible({"x": 0})


class TestScipyBackend:
    def test_simple_minimum(self):
        program = BinaryProgram()
        program.add_variable("x", 2.0)
        program.add_variable("y", 3.0)
        program.add_constraint({"x": 1.0, "y": 1.0}, GE, 1.0)
        result = scipy_backend.solve(program)
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)
        assert result.values == {"x": 1, "y": 0}

    def test_infeasible(self):
        program = BinaryProgram()
        program.add_variable("x", 1.0)
        program.add_constraint({"x": 1.0}, GE, 2.0)  # x <= 1 < 2
        result = scipy_backend.solve(program)
        assert result.status is SolverStatus.INFEASIBLE

    def test_empty_program(self):
        result = scipy_backend.solve(BinaryProgram())
        assert result.is_optimal
        assert result.objective == 0.0

    def test_selected_helper(self):
        program = BinaryProgram()
        program.add_variable("x", -1.0)
        result = scipy_backend.solve(program)
        assert result.selected() == ["x"]


class TestSetPartitionSolver:
    def test_simple_partition(self):
        solver = SetPartitionSolver(
            universe=["a", "b", "c"],
            candidates=[
                frozenset({"a", "b"}),
                frozenset({"c"}),
                frozenset({"a"}),
                frozenset({"b", "c"}),
            ],
            costs=[1.0, 0.5, 0.7, 0.9],
        )
        result = solver.solve()
        assert result.is_optimal
        # Optimal: {a} + {b, c} = 1.6 vs {a, b} + {c} = 1.5.
        assert result.objective == pytest.approx(1.5)
        groups = solver.selected_groups(result)
        assert sorted(sorted(g) for g in groups) == [["a", "b"], ["c"]]

    def test_infeasible_uncoverable_class(self):
        solver = SetPartitionSolver(
            universe=["a", "b"], candidates=[frozenset({"a"})], costs=[1.0]
        )
        result = solver.solve()
        assert result.status is SolverStatus.INFEASIBLE
        assert "b" in result.message

    def test_max_count_enforced(self):
        solver = SetPartitionSolver(
            universe=["a", "b"],
            candidates=[frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"})],
            costs=[0.1, 0.1, 5.0],
            max_count=1,
        )
        result = solver.solve()
        assert result.is_optimal
        assert result.objective == pytest.approx(5.0)

    def test_min_count_enforced(self):
        solver = SetPartitionSolver(
            universe=["a", "b"],
            candidates=[frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"})],
            costs=[3.0, 3.0, 0.5],
            min_count=2,
        )
        result = solver.solve()
        assert result.is_optimal
        assert result.objective == pytest.approx(6.0)

    def test_cardinality_infeasible(self):
        solver = SetPartitionSolver(
            universe=["a", "b"],
            candidates=[frozenset({"a"}), frozenset({"b"})],
            costs=[1.0, 1.0],
            max_count=1,
        )
        assert solver.solve().status is SolverStatus.INFEASIBLE

    def test_negative_cost_rejected(self):
        with pytest.raises(SolverError):
            SetPartitionSolver(["a"], [frozenset({"a"})], [-1.0])

    def test_candidate_outside_universe_rejected(self):
        with pytest.raises(SolverError):
            SetPartitionSolver(["a"], [frozenset({"zz"})], [1.0])

    def test_mismatched_costs_rejected(self):
        with pytest.raises(SolverError):
            SetPartitionSolver(["a"], [frozenset({"a"})], [1.0, 2.0])


class TestBackendAgreement:
    """The two backends are independent exact solvers: they must agree."""

    @staticmethod
    def _random_instance(rng, num_classes, num_candidates):
        universe = [f"c{i}" for i in range(num_classes)]
        candidates = [frozenset({cls}) for cls in universe]  # feasibility anchor
        while len(candidates) < num_candidates:
            size = rng.randint(1, min(4, num_classes))
            group = frozenset(rng.sample(universe, size))
            if group not in candidates:
                candidates.append(group)
        costs = [round(rng.uniform(0.1, 3.0), 3) for _ in candidates]
        return universe, candidates, costs

    @pytest.mark.parametrize("seed", range(8))
    def test_objectives_match_on_random_instances(self, seed):
        rng = random.Random(seed)
        universe, candidates, costs = self._random_instance(rng, 7, 18)

        bnb = SetPartitionSolver(universe, candidates, costs).solve()

        from repro.core.selection import build_program

        program = build_program(candidates, costs, frozenset(universe))
        hi = scipy_backend.solve(program)

        assert bnb.is_optimal and hi.is_optimal
        assert bnb.objective == pytest.approx(hi.objective, abs=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_objectives_match_with_cardinality(self, seed):
        rng = random.Random(100 + seed)
        universe, candidates, costs = self._random_instance(rng, 6, 14)
        max_count = 4

        bnb = SetPartitionSolver(
            universe, candidates, costs, max_count=max_count
        ).solve()

        from repro.core.selection import build_program

        program = build_program(
            candidates, costs, frozenset(universe), max_groups=max_count
        )
        hi = scipy_backend.solve(program)
        assert bnb.status == hi.status
        if bnb.is_optimal:
            assert bnb.objective == pytest.approx(hi.objective, abs=1e-6)
