"""Seeded chaos drills: the executor stack under injected broker faults.

:class:`~repro.service.dist.chaos.ChaosBroker` replays a deterministic
fault schedule (claim failures, dropped heartbeats, duplicated and
delayed completions, corrupt first-delivery payloads) over a real
broker.  Under every schedule the invariants must hold: every job
completes exactly once with results byte-identical to the sequential
reference, nothing is lost, nothing good is quarantined, and the queue
drains clean.
"""

import pickle
import threading
import time

import pytest

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute, MaxGroupSize
from repro.eventlog.events import ROLE_KEY
from repro.service import AbstractionJob, LogRef, SequentialExecutor
from repro.service.dist import (
    ChaosBroker,
    ChaosConfig,
    ChaosError,
    Claim,
    DistributedExecutor,
    TaskEnvelope,
    connect_broker,
    decode_result,
    new_task_id,
    worker_loop,
)
from repro.service.dist.worker import _Heartbeat
from repro.service.serialization import result_signature


def _jobs():
    return [
        AbstractionJob(
            log=LogRef.builtin("running_example"),
            constraints=ConstraintSet([MaxGroupSize(3)]),
            job_id="re-size3",
        ),
        AbstractionJob(
            log=LogRef.builtin("running_example"),
            constraints=ConstraintSet([MaxGroupSize(5)]),
            job_id="re-size5",
        ),
        AbstractionJob(
            log=LogRef.builtin("running_example"),
            constraints=ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)]),
            job_id="re-roles",
        ),
    ]


def _broker_url(kind, tmp_path):
    if kind == "fs":
        return f"fs://{tmp_path / 'queue'}"
    return f"sqlite://{tmp_path / 'queue.db'}"


#: The adversarial (but recoverable) schedule the identity drill runs.
_DRILL = dict(
    claim_failure_rate=0.15,
    heartbeat_drop_rate=0.2,
    complete_duplicate_rate=0.2,
    complete_delay_rate=0.25,
    complete_delay_polls=2,
    corrupt_claim_rate=0.2,
)


class TestSeededSchedules:
    @pytest.mark.parametrize("broker_kind", ["fs", "sqlite"])
    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_byte_identity_and_exactly_once_under_chaos(
        self, tmp_path, broker_kind, seed
    ):
        jobs = _jobs()
        reference = {
            job.job_id: result_signature(SequentialExecutor().submit(job).result())
            for job in jobs
        }
        inner = connect_broker(_broker_url(broker_kind, tmp_path))
        broker = ChaosBroker(inner, ChaosConfig(seed=seed, **_DRILL))
        executor = DistributedExecutor(
            broker, workers=0, lease=5.0, poll_interval=0.02
        )
        worker_stats = []
        workers = [
            threading.Thread(
                target=lambda: worker_stats.append(
                    worker_loop(broker, lease=5.0, poll_interval=0.02)
                ),
                daemon=True,
            )
            for _ in range(2)
        ]
        try:
            for thread in workers:
                thread.start()
            handles = [(job, executor.submit(job)) for job in jobs]
            for job, handle in handles:
                # "No job lost": every handle resolves well before the
                # timeout, whatever the schedule injected.
                result = handle.result(timeout=120)
                assert result_signature(result) == reference[job.job_id]
        finally:
            broker.request_stop()
            for thread in workers:
                thread.join(timeout=20)
            executor.shutdown()
        assert not any(thread.is_alive() for thread in workers)
        # Exactly once, nothing stranded: the queue drained completely
        # and no good job was quarantined by an injected fault.
        state = broker.stats()
        assert state["queued"] == 0
        assert state["claimed"] == 0
        assert state["quarantined"] == 0
        assert sum(stats.quarantined for stats in worker_stats) == 0
        inner.close()

    def test_same_seed_same_schedule(self):
        class _Dummy:
            url = ""

        config = ChaosConfig(seed=42, claim_failure_rate=0.5,
                             heartbeat_drop_rate=0.5)
        first = ChaosBroker(_Dummy(), config)
        second = ChaosBroker(_Dummy(), config)
        rolls = [
            (op, rate)
            for _ in range(50)
            for op, rate in (("claim", 0.5), ("heartbeat", 0.5))
        ]
        assert [first._roll(op, rate) for op, rate in rolls] == [
            second._roll(op, rate) for op, rate in rolls
        ]
        # A different seed draws a different schedule.
        third = ChaosBroker(_Dummy(), ChaosConfig(seed=43, claim_failure_rate=0.5,
                                                  heartbeat_drop_rate=0.5))
        assert [first._roll(op, rate) for op, rate in rolls] != [
            third._roll(op, rate) for op, rate in rolls
        ]


def _echo_call(value, cache=None):
    """Module-level call body (picklable by reference)."""
    return value


class TestCorruptPayloads:
    def test_corrupt_first_delivery_is_released_then_completed_clean(
        self, tmp_path
    ):
        inner = connect_broker(_broker_url("fs", tmp_path))
        broker = ChaosBroker(inner, ChaosConfig(seed=1, corrupt_claim_rate=1.0))
        task_id = new_task_id()
        broker.put(TaskEnvelope(
            task_id=task_id, kind="call",
            payload=pickle.dumps((_echo_call, ("payload-ok",), {})),
        ))
        stats = worker_loop(
            broker, lease=5.0, poll_interval=0.01, max_tasks=1, idle_exit=10.0
        )
        # First delivery arrived corrupted -> voluntary release; the
        # redelivery (attempts=1) is exempt from corruption and runs.
        assert stats.released == 1
        assert stats.completed == 1
        assert stats.quarantined == 0
        record = decode_result(broker.get_result(task_id))
        assert record["ok"] is True and record["value"] == "payload-ok"
        assert broker.stats()["chaos"]["corrupt_claims"] == 1
        inner.close()

    def test_truly_poisonous_payload_quarantines_after_attempts(self, tmp_path):
        broker = connect_broker(_broker_url("fs", tmp_path))
        task_id = new_task_id()
        broker.put(TaskEnvelope(task_id=task_id, kind="call",
                                payload=b"\xffnot-a-pickle"))
        stats = worker_loop(
            broker, lease=5.0, poll_interval=0.01, idle_exit=0.5,
            max_attempts=3,
        )
        # Two voluntary releases burn the delivery budget; the third
        # delivery quarantines instead of crash-looping the fleet.
        assert stats.released == 2
        assert stats.quarantined == 1
        assert broker.stats()["quarantined"] == 1
        record = decode_result(broker.get_result(task_id))
        assert record["ok"] is False and "quarantined" in record["error"]
        broker.close()

    @pytest.mark.parametrize("broker_kind", ["fs", "sqlite"])
    def test_release_requeues_with_attempts_plus_one(self, tmp_path, broker_kind):
        broker = connect_broker(_broker_url(broker_kind, tmp_path))
        broker.put(TaskEnvelope(task_id=new_task_id(), kind="call",
                                payload=b"x"))
        claim = broker.claim("w1", lease=5.0)
        assert claim is not None and claim.envelope.attempts == 0
        assert broker.release(claim) is True
        assert broker.release(claim) is False  # claim already gone
        redelivered = broker.claim("w2", lease=5.0)
        assert redelivered is not None
        assert redelivered.envelope.attempts == 1
        broker.close()


class TestWorkerResilience:
    def test_claim_failures_are_retried_not_fatal(self, tmp_path):
        inner = connect_broker(_broker_url("fs", tmp_path))
        broker = ChaosBroker(inner, ChaosConfig(seed=5, claim_failure_rate=1.0))
        stats_box = []
        thread = threading.Thread(
            target=lambda: stats_box.append(
                worker_loop(broker, lease=5.0, poll_interval=0.01)
            ),
            daemon=True,
        )
        thread.start()
        time.sleep(0.4)
        broker.request_stop()
        thread.join(timeout=10)
        assert not thread.is_alive()
        (stats,) = stats_box
        # Every claim raised ChaosError; the loop absorbed them all.
        assert stats.broker_errors > 0
        assert stats.completed == 0 and stats.quarantined == 0
        inner.close()

    def test_heartbeat_counts_misses_and_fails_lease_fast(self):
        class _PartitionedBroker:
            def heartbeat(self, claim, lease):
                raise ChaosError("injected heartbeat drop")

        claim = Claim(
            envelope=TaskEnvelope(task_id="t", kind="call", payload=b"x"),
            worker="w", deadline=0.0,
        )
        errors = []
        beat = _Heartbeat(
            _PartitionedBroker(), claim, lease=0.06,
            on_error=errors.append, max_misses=2,
        )
        with beat:
            deadline = time.time() + 5.0
            while not beat.lost and time.time() < deadline:
                time.sleep(0.01)
        # Two consecutive misses fail the lease fast: renewal stops, so
        # the lease expires and the task is redelivered elsewhere.
        assert beat.lost is True
        assert beat.misses == 2
        assert len(errors) == 2

    def test_heartbeat_miss_counter_surfaces_in_worker_stats(self, tmp_path):
        inner = connect_broker(_broker_url("fs", tmp_path))
        broker = ChaosBroker(inner, ChaosConfig(seed=9, heartbeat_drop_rate=1.0))
        broker.put(TaskEnvelope(
            task_id=new_task_id(), kind="call",
            payload=pickle.dumps((_sleep_then_echo, (0.2, "ok"), {})),
        ))
        # lease=0.15 -> heartbeat interval 0.05; every beat drops while
        # the 0.2s task runs, so the miss counter must move.
        stats = worker_loop(
            broker, lease=0.15, poll_interval=0.01, max_tasks=1,
            idle_exit=10.0, heartbeat_max_misses=100,
        )
        assert stats.completed == 1
        assert stats.heartbeat_errors > 0
        inner.close()


def _sleep_then_echo(seconds, value, cache=None):
    """Module-level slow call body (picklable by reference)."""
    time.sleep(seconds)
    return value


class TestChaosConfig:
    def test_rates_validated(self):
        with pytest.raises(Exception, match="must be in"):
            ChaosConfig(claim_failure_rate=1.5)

    def test_any_faults_and_transparent_proxy(self, tmp_path):
        assert not ChaosConfig().any_faults()
        assert ChaosConfig(put_failure_rate=0.1).any_faults()
        inner = connect_broker(_broker_url("fs", tmp_path))
        broker = ChaosBroker(inner)  # all-zero rates: pure delegation
        task_id = new_task_id()
        broker.put(TaskEnvelope(task_id=task_id, kind="call", payload=b"x"))
        claim = broker.claim("w", lease=5.0)
        assert claim is not None and claim.envelope.payload == b"x"
        assert broker.heartbeat(claim, 5.0) is True
        assert broker.complete(claim, b"done") is True
        assert broker.get_result(task_id) == b"done"
        assert broker.stats()["chaos"]["claim_failures"] == 0
        inner.close()

    def test_from_args_reads_cli_namespace(self):
        import argparse

        namespace = argparse.Namespace(
            chaos_seed=7, chaos_claim_failure_rate=0.3,
            chaos_heartbeat_drop_rate=0.0, chaos_complete_duplicate_rate=0.0,
            chaos_complete_delay_rate=0.0, chaos_corrupt_claim_rate=0.1,
            chaos_put_failure_rate=0.0,
        )
        config = ChaosConfig.from_args(namespace)
        assert config.seed == 7
        assert config.claim_failure_rate == 0.3
        assert config.corrupt_claim_rate == 0.1
        assert ChaosConfig.from_args(argparse.Namespace()) == ChaosConfig()
