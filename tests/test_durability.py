"""Durability drills: crash-resumable runs, self-healing stores, fleets.

Three layers of the durability story, each tested end to end:

* the **run journal** — ``repro batch --run-dir`` appends every
  finished row line-atomically; a SIGKILL at any seeded point loses at
  most the in-flight row, and ``--resume`` replays journaled rows
  *verbatim* (zero recomputation) before computing only the rest;
* **store integrity** — disk-store entries and fs-broker payloads
  carry embedded checksums; corruption (torn writes, bit rot) is
  detected on read, quarantined, and transparently recomputed, and
  ``repro fsck`` repairs a whole directory offline;
* the **supervised fleet** — ``repro fleet`` restarts crashed workers
  under seeded backoff, quarantines crash-looping slots, and drains
  gracefully on SIGTERM, with every decision visible to the doctor.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.constraints import ConstraintSet, MaxGroupSize
from repro.exceptions import ReproError
from repro.obs.doctor import analyze_trace, recommend
from repro.obs.live import LiveAggregator
from repro.obs.trace import read_trace
from repro.service import (
    AbstractionJob,
    ArtifactCache,
    LogRef,
    FleetSupervisor,
    RetryPolicy,
    RunJournal,
    fsck_report,
    fsck_store,
    run_batch,
    run_job,
)
from repro.service.dist import DistributedExecutor, connect_broker
from repro.service.dist.chaos import ChaosConfig, DiskFaultInjector
from repro.service.dist.fsbroker import FilesystemBroker
from repro.service.dist.worker import spawn_worker_process
from repro.service.journal import (
    FRAME_MAGIC,
    IntegrityError,
    frame_bytes,
    manifest_digest,
    seal,
    sweep_stale_tmp,
    unframe_bytes,
    verify_seal,
)


def _jobs(n: int = 4):
    return [
        AbstractionJob(
            log=LogRef.builtin("running_example"),
            constraints=ConstraintSet([MaxGroupSize(bound)]),
            job_id=f"re-{bound}",
        )
        for bound in range(2, 2 + n)
    ]


def _masked(value):
    """Rows with wall-clock fields dropped (the only nondeterminism)."""
    if isinstance(value, dict):
        return {k: _masked(v) for k, v in value.items()
                if k not in ("seconds", "timings")}
    if isinstance(value, list):
        return [_masked(v) for v in value]
    return value


class TestIntegrityPrimitives:
    def test_seal_round_trip_and_tamper(self):
        payload = seal({"a": 1, "b": [2, 3]})
        assert "integrity" in payload
        assert verify_seal(dict(payload)) == {"a": 1, "b": [2, 3]}
        payload["a"] = 999
        with pytest.raises(IntegrityError):
            verify_seal(payload)

    def test_legacy_unsealed_payload_passes_through(self):
        assert verify_seal({"a": 1}) == {"a": 1}

    def test_frame_round_trip_and_tamper(self):
        data = b"some pickled payload \x00\xff"
        framed = frame_bytes(data)
        assert framed.startswith(FRAME_MAGIC)
        assert unframe_bytes(framed) == data
        with pytest.raises(IntegrityError):
            unframe_bytes(framed[:-2] + b"xx")

    def test_unframed_legacy_bytes_pass_through(self):
        assert unframe_bytes(b"legacy") == b"legacy"

    def test_stale_tmp_sweep_keeps_fresh_files(self, tmp_path):
        stale = tmp_path / "a.tmp"
        fresh = tmp_path / "b.tmp"
        keeper = tmp_path / "data.json"
        for path in (stale, fresh, keeper):
            path.write_text("x")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        removed = sweep_stale_tmp(tmp_path, max_age=300.0)
        assert [Path(p).name for p in removed] == ["a.tmp"]
        assert not stale.exists() and fresh.exists() and keeper.exists()


class TestRunJournal:
    def test_append_load_round_trip_latest_wins(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.append("j1", "fp1", {"job_id": "j1", "v": 1})
            journal.append("j2", "fp2", {"job_id": "j2", "v": 2})
            journal.append("j1", "fp1", {"job_id": "j1", "v": 3})
        rows = RunJournal(tmp_path).load()
        assert rows[("j1", "fp1")] == {"job_id": "j1", "v": 3}
        assert rows[("j2", "fp2")] == {"job_id": "j2", "v": 2}

    def test_torn_and_corrupt_lines_are_skipped(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.append("j1", "fp1", {"v": 1})
            journal.append("j2", "fp2", {"v": 2})
        path = tmp_path / "journal.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a byte inside the first row's payload, tear the second.
        corrupt = lines[0].replace(b'"v":1', b'"v":7')
        path.write_bytes(corrupt + lines[1][: len(lines[1]) // 2])
        journal = RunJournal(tmp_path)
        assert journal.load() == {}
        assert journal.skipped == 2

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        digest = manifest_digest([("j1", "fp1")])
        with RunJournal(tmp_path) as journal:
            journal.check_manifest(digest, resume=False)
            journal.append("j1", "fp1", {"v": 1})
        with pytest.raises(ReproError, match="--resume"):
            RunJournal(tmp_path).check_manifest(digest, resume=False)

    def test_resume_refuses_different_manifest(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.check_manifest(manifest_digest([("a", "f1")]), resume=True)
        with pytest.raises(ReproError, match="manifest"):
            RunJournal(tmp_path).check_manifest(
                manifest_digest([("b", "f2")]), resume=True
            )


#: Driver for the kill drills: run a journalled batch in a child that
#: SIGKILLs itself the moment the journal holds K rows.  Deterministic
#: crash points without timing races.
_KILL_DRIVER = """
import json, os, signal, sys
from repro.constraints import ConstraintSet, MaxGroupSize
from repro.service import AbstractionJob, LogRef, run_batch
from repro.service.journal import RunJournal

kill_after = int(sys.argv[1])
run_dir = sys.argv[2]
out = sys.argv[3]
n = int(sys.argv[4])

_original = RunJournal.append
def _append_then_die(self, job_id, fingerprint, row):
    _original(self, job_id, fingerprint, row)
    if kill_after and sum(1 for _ in open(self.path)) >= kill_after:
        os.kill(os.getpid(), signal.SIGKILL)
RunJournal.append = _append_then_die

jobs = [
    AbstractionJob(
        log=LogRef.builtin("running_example"),
        constraints=ConstraintSet([MaxGroupSize(bound)]),
        job_id=f"re-{bound}",
    )
    for bound in range(2, 2 + n)
]
run_batch(jobs, run_dir=run_dir, output=out)
"""


class TestKillResume:
    N = 4

    def _run_killed(self, tmp_path, kill_after: int):
        run_dir = tmp_path / f"run-k{kill_after}"
        out = tmp_path / f"out-k{kill_after}.jsonl"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_DRIVER, str(kill_after),
             str(run_dir), str(out), str(self.N)],
            env=env, capture_output=True, timeout=120,
        )
        return run_dir, out, proc

    @pytest.mark.parametrize("kill_after", [1, 2, 3])
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path, kill_after):
        jobs = _jobs(self.N)
        reference = run_batch(jobs).rows

        run_dir, out, proc = self._run_killed(tmp_path, kill_after)
        assert proc.returncode == -signal.SIGKILL
        assert not out.exists()  # output is finalized atomically, or not at all
        journaled = sum(1 for _ in open(run_dir / "journal.jsonl"))
        assert journaled == kill_after

        report = run_batch(_jobs(self.N), run_dir=run_dir, resume=True,
                           output=out)
        assert report.journal["replayed"] == kill_after
        assert report.journal["computed"] == self.N - kill_after
        resumed = [json.loads(line) for line in open(out)]
        assert _masked(resumed) == _masked(reference)
        # Replayed rows are verbatim: byte-identical to the journal copy.
        rows = RunJournal(run_dir).load()
        for row in resumed[:kill_after]:
            assert rows[(row["id"], row["fingerprint"])] == row

    def test_second_resume_replays_everything(self, tmp_path):
        run_dir = tmp_path / "run"
        first = run_batch(_jobs(self.N), run_dir=run_dir)
        second = run_batch(_jobs(self.N), run_dir=run_dir, resume=True)
        assert second.journal["replayed"] == self.N
        assert second.journal["computed"] == 0
        # Full replay is fully byte-identical, wall clock included.
        assert second.rows == first.rows

    def test_fresh_run_on_dirty_dir_raises(self, tmp_path):
        run_dir = tmp_path / "run"
        run_batch(_jobs(2), run_dir=run_dir)
        with pytest.raises(ReproError, match="--resume"):
            run_batch(_jobs(2), run_dir=run_dir)


class TestStoreSelfHealing:
    def test_bit_rot_is_quarantined_and_recomputed(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        job = _jobs(1)[0]
        result, _ = run_job(job, cache)
        fingerprint = job.fingerprint().full

        # Valid JSON, silently altered content: only the checksum sees it.
        path = next(p for p in store.glob("*/*.json")
                    if "selection" not in p.parts)
        entry = json.loads(path.read_text())
        entry["seconds"] = 123456.0
        path.write_text(json.dumps(entry))

        fresh = ArtifactCache(disk_dir=store)
        assert fresh.get_result(fingerprint) is None
        assert fresh.stats.disk_quarantined == 1
        assert list(store.glob("quarantine/*.bad"))
        # Recompute repairs the store in place.
        run_job(job, fresh)
        healed = ArtifactCache(disk_dir=store)
        assert healed.get_result(fingerprint) is not None

    def test_startup_sweeps_stale_tmp(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        stale = store / "leftover.tmp"
        stale.write_text("{")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        cache = ArtifactCache(disk_dir=store)
        assert cache.tmp_swept == 1
        assert not stale.exists()

    def test_torn_write_injection_heals_on_read(self, tmp_path):
        store = tmp_path / "store"
        injector = DiskFaultInjector(seed=7, torn_rate=1.0)
        cache = ArtifactCache(disk_dir=store, disk_writer=injector.write_json_atomic)
        job = _jobs(1)[0]
        run_job(job, cache)
        assert injector.injected["torn"] >= 1

        fresh = ArtifactCache(disk_dir=store)
        assert fresh.get_result(job.fingerprint().full) is None
        assert fresh.stats.disk_quarantined >= 1

    def test_enospc_injection_degrades_without_failing(self, tmp_path):
        store = tmp_path / "store"
        injector = DiskFaultInjector(seed=7, enospc_rate=1.0)
        cache = ArtifactCache(disk_dir=store, disk_writer=injector.write_json_atomic)
        job = _jobs(1)[0]
        result, _ = run_job(job, cache)  # must not raise
        assert injector.injected["enospc"] >= 1
        assert result is not None
        assert not list(store.glob("*/*.json"))

    def test_fsck_store_repairs_and_converges(self, tmp_path):
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        for job in _jobs(3):
            run_job(job, cache)
        entries = [p for p in store.glob("*/*.json") if "selection" not in p.parts]
        entries[0].write_text("{torn")
        entries[1].write_bytes(entries[1].read_bytes().replace(b'"seconds"', b'"sekonds"'))
        stale = store / "x.tmp"
        stale.write_text("{")
        os.utime(stale, (time.time() - 3600,) * 2)

        report = fsck_store(store, repair=True)
        assert len(report["quarantined"]) == 2
        assert report["repaired"] == 2
        assert len(report["tmp_removed"]) == 1
        # Second pass: clean bill of health.
        again = fsck_store(store, repair=True)
        assert again["quarantined"] == []
        assert again["already_quarantined"] == 2


class TestBrokerIntegrity:
    def _enqueue(self, broker, payload=b"payload"):
        from repro.service.dist.broker import TaskEnvelope, new_task_id

        envelope = TaskEnvelope(task_id=new_task_id(), kind="call",
                                payload=payload)
        broker.put(envelope)
        return envelope

    def test_queue_payloads_are_framed_on_disk(self, tmp_path):
        broker = FilesystemBroker(tmp_path / "q")
        self._enqueue(broker, b"hello")
        (entry,) = list((tmp_path / "q" / "queue").iterdir())
        assert entry.read_bytes().startswith(FRAME_MAGIC)
        claim = broker.claim("w1", lease=5.0)
        assert claim.envelope.payload == b"hello"

    def test_corrupt_queue_payload_is_quarantined_not_delivered(self, tmp_path):
        broker = FilesystemBroker(tmp_path / "q")
        self._enqueue(broker, b"rotten")
        good = self._enqueue(broker, b"good")
        for entry in (tmp_path / "q" / "queue").iterdir():
            data = entry.read_bytes()
            if data.endswith(b"rotten"):
                entry.write_bytes(data[:-3] + b"XXX")
        claim = broker.claim("w1", lease=5.0)
        assert claim is not None
        assert claim.envelope.payload == b"good"
        assert claim.envelope.task_id == good.task_id
        assert list((tmp_path / "q" / "quarantine").iterdir())

    def test_corrupt_result_becomes_typed_error(self, tmp_path):
        from repro.service.dist.broker import decode_result, encode_result

        broker = FilesystemBroker(tmp_path / "q")
        envelope = self._enqueue(broker)
        claim = broker.claim("w1", lease=5.0)
        broker.complete(claim, encode_result(value=41))
        (result_file,) = list((tmp_path / "q" / "results").iterdir())
        result_file.write_bytes(result_file.read_bytes()[:-4] + b"XXXX")
        payload = broker.get_result(envelope.task_id)
        assert payload is not None
        decoded = decode_result(payload)
        assert "checksum" in (decoded.get("error") or "")
        assert list((tmp_path / "q" / "quarantine").glob("*.res.bad"))

    def test_fsck_report_covers_store_and_broker(self, tmp_path):
        import pickle

        broker = FilesystemBroker(tmp_path / "q")
        self._enqueue(broker, pickle.dumps({"kind": "call"}))
        store = tmp_path / "store"
        cache = ArtifactCache(disk_dir=store)
        run_job(_jobs(1)[0], cache)
        report = fsck_report(cache_dir=store, broker=f"fs://{tmp_path / 'q'}")
        assert report["schema"] == "gecco-fsck/1"
        assert report["totals"]["quarantined"] == 0
        assert report["store"]["scanned"] >= 1
        assert report["broker"]["scanned"] >= 1


class TestGracefulShutdown:
    def test_worker_drains_on_sigterm(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        url = f"fs://{tmp_path / 'q'}"
        connect_broker(url).close()  # create the directory layout
        process = spawn_worker_process(url, lease=5.0, poll_interval=0.02,
                                       trace=str(trace))
        try:
            deadline = time.time() + 10
            while not trace.exists() and time.time() < deadline:
                time.sleep(0.02)
            time.sleep(0.2)  # let the loop install its signal handlers
            os.kill(process.pid, signal.SIGTERM)
            process.join(timeout=10)
            assert process.exitcode == 0
        finally:
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        events = read_trace(trace)
        (exit_event,) = [e for e in events if e["event"] == "worker_exit"]
        assert exit_event["drained_by"] == "SIGTERM"


class TestFleetSupervisor:
    def test_chaos_kills_are_restarted_and_jobs_survive(self, tmp_path):
        url = f"fs://{tmp_path / 'q'}"
        trace = tmp_path / "trace.jsonl"
        jobs = _jobs(3)
        with DistributedExecutor(url, workers=0, lease=5.0,
                                 poll_interval=0.02) as executor:
            handles = [executor.submit(job) for job in jobs]
            supervisor = FleetSupervisor(
                url, workers=2, lease=5.0, poll_interval=0.02,
                trace=str(trace), idle_exit=1.0, check_interval=0.05,
                max_restarts=50, restart_window=0.5,
                backoff=RetryPolicy(attempts=10**6, base_delay=0.01,
                                    max_delay=0.05, seed="drill"),
                chaos=ChaosConfig(seed=3, kill_rate=1.0),
            )
            report = supervisor.run()
            results = [handle.result(timeout=10) for handle in handles]
        assert all(result is not None for result in results)
        assert report["restarts"] >= 1
        assert report["drained_by"] == "idle"
        events = read_trace(trace)
        names = [e["event"] for e in events]
        assert "supervisor_started" in names
        assert "worker_restart" in names
        assert "supervisor_exit" in names

    def test_crash_loop_quarantines_the_slot(self, tmp_path, monkeypatch):
        # Workers that die instantly: the fork children inherit the patch.
        import repro.service.dist.worker as worker_mod

        def _die_immediately(*args, **kwargs):
            os._exit(3)

        monkeypatch.setattr(worker_mod, "worker_loop", _die_immediately)
        url = f"fs://{tmp_path / 'q'}"
        trace = tmp_path / "trace.jsonl"
        supervisor = FleetSupervisor(
            url, workers=1, max_restarts=2, restart_window=30.0,
            check_interval=0.02, trace=str(trace), mp_context="fork",
            backoff=RetryPolicy(attempts=10**6, base_delay=0.01,
                                max_delay=0.02, seed="loop"),
        )
        report = supervisor.run()
        assert report["quarantined_slots"] == [0]
        assert report["drained_by"] == "all_slots_quarantined"
        assert report["slots"][0]["last_exitcode"] == 3
        names = [e["event"] for e in read_trace(trace)]
        assert names.count("worker_restart") == 1
        assert "supervisor_slot_quarantined" in names

        # The doctor turns the same trace into a crash-loop diagnosis.
        doctor = analyze_trace(read_trace(trace))
        assert doctor["taxonomy"]["worker_restarts"] == 1
        assert doctor["taxonomy"]["slot_quarantines"] == 1
        recs = recommend(doctor)
        assert any(rec["id"] == "crash_loop" for rec in recs)


class TestObservabilityOfRestarts:
    _EVENTS = [
        {"event": "worker_restart", "ts": 1.0, "slot": 0, "exitcode": -9,
         "restarts": 1, "backoff_s": 0.2},
        {"event": "worker_restart", "ts": 2.0, "slot": 0, "exitcode": -9,
         "restarts": 2, "backoff_s": 0.4},
        {"event": "worker_restart", "ts": 3.0, "slot": 1, "exitcode": 1,
         "restarts": 1, "backoff_s": 0.2},
        {"event": "supervisor_slot_quarantined", "ts": 4.0, "slot": 0,
         "restarts": 3, "window_s": 30.0, "exitcode": -9},
    ]

    def test_doctor_counts_and_recommends(self):
        report = analyze_trace(list(self._EVENTS))
        assert report["taxonomy"]["worker_restarts"] == 3
        assert report["taxonomy"]["slot_quarantines"] == 1
        timeline_events = [entry["event"] for entry in report["timeline"]]
        assert "worker_restart" in timeline_events
        assert any(rec["id"] == "crash_loop" for rec in recommend(report))

    def test_top_surfaces_restart_incidents(self):
        aggregator = LiveAggregator(window=60.0)
        aggregator.feed(list(self._EVENTS))
        snapshot = aggregator.snapshot()
        assert snapshot["taxonomy"]["worker_restarts"] == 3
        assert snapshot["taxonomy"]["slot_quarantines"] == 1
        incidents = [i["event"] for i in snapshot["incidents"]]
        assert "worker_restart" in incidents
        assert "supervisor_slot_quarantined" in incidents
