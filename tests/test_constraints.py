"""Unit tests for the constraint framework (all three categories)."""

import pytest

from repro.constraints import (
    AtLeastFraction,
    CannotLink,
    CheckingMode,
    ConstraintSet,
    ExactGroups,
    MaxConsecutiveGap,
    MaxDistinctClassAttribute,
    MaxDistinctInstanceAttribute,
    MaxEventsPerClass,
    MaxGroups,
    MaxGroupSize,
    MaxInstanceAggregate,
    MaxInstanceDuration,
    MinDistinctClassAttribute,
    MinDistinctInstanceAttribute,
    MinEventsPerClass,
    MinGroups,
    MinGroupSize,
    MinInstanceAggregate,
    MinInstanceDuration,
    Monotonicity,
    MustLink,
    RequiredClasses,
    class_attribute_view,
    infer_checking_mode,
)
from repro.eventlog.events import Event
from repro.exceptions import ConstraintError


def make_instance(*specs):
    """Build an instance from (class, attrs) pairs or plain class names."""
    events = []
    for spec in specs:
        if isinstance(spec, tuple):
            events.append(Event(spec[0], spec[1]))
        else:
            events.append(Event(spec))
    return events


class TestGroupingConstraints:
    def test_max_groups(self):
        constraint = MaxGroups(3)
        assert constraint.check(3)
        assert not constraint.check(4)
        assert constraint.max_groups == 3
        assert constraint.min_groups is None

    def test_min_groups(self):
        constraint = MinGroups(2)
        assert constraint.check(2)
        assert not constraint.check(1)
        assert constraint.min_groups == 2

    def test_exact_groups(self):
        constraint = ExactGroups(4)
        assert constraint.check(4)
        assert not constraint.check(3)
        assert constraint.max_groups == constraint.min_groups == 4

    @pytest.mark.parametrize("cls", [MaxGroups, MinGroups, ExactGroups])
    def test_invalid_bounds(self, cls):
        with pytest.raises(ConstraintError):
            cls(0)


class TestClassConstraints:
    def test_group_size_bounds(self):
        assert MinGroupSize(2).check(frozenset({"a", "b"}))
        assert not MinGroupSize(3).check(frozenset({"a", "b"}))
        assert MaxGroupSize(2).check(frozenset({"a", "b"}))
        assert not MaxGroupSize(1).check(frozenset({"a", "b"}))

    def test_monotonicity_labels(self):
        assert MinGroupSize(2).monotonicity is Monotonicity.MONOTONIC
        assert MaxGroupSize(2).monotonicity is Monotonicity.ANTI_MONOTONIC
        assert MustLink("a", "b").monotonicity is Monotonicity.NON_MONOTONIC

    def test_cannot_link(self):
        constraint = CannotLink("a", "b")
        assert constraint.check(frozenset({"a", "c"}))
        assert not constraint.check(frozenset({"a", "b"}))

    def test_cannot_link_same_class(self):
        with pytest.raises(ConstraintError):
            CannotLink("a", "a")

    def test_must_link(self):
        constraint = MustLink("a", "b")
        assert constraint.check(frozenset({"a", "b"}))
        assert constraint.check(frozenset({"c"}))
        assert not constraint.check(frozenset({"a", "c"}))

    def test_class_attribute_bounds(self, running_log):
        view = class_attribute_view(running_log)
        same_role = MaxDistinctClassAttribute("org:role", 1)
        assert same_role.check(frozenset({"rcp", "ckc"}), view)
        assert not same_role.check(frozenset({"rcp", "acc"}), view)
        spread = MinDistinctClassAttribute("org:role", 2)
        assert spread.check(frozenset({"rcp", "acc"}), view)
        assert not spread.check(frozenset({"rcp", "ckc"}), view)

    def test_class_attribute_requires_view(self):
        with pytest.raises(ConstraintError):
            MaxDistinctClassAttribute("org:role", 1).check(frozenset({"a"}), None)

    def test_required_classes(self):
        constraint = RequiredClasses({"a", "b"})
        assert constraint.check(frozenset({"a"}))
        assert not constraint.check(frozenset({"a", "c"}))

    def test_required_classes_empty(self):
        with pytest.raises(ConstraintError):
            RequiredClasses([])


class TestInstanceConstraints:
    def test_aggregate_bounds(self):
        instance = make_instance(("a", {"cost": 100}), ("b", {"cost": 300}))
        group = frozenset({"a", "b"})
        assert MaxInstanceAggregate("cost", "sum", 500).check_instance(instance, group)
        assert not MaxInstanceAggregate("cost", "sum", 300).check_instance(instance, group)
        assert MinInstanceAggregate("cost", "sum", 400).check_instance(instance, group)
        assert MaxInstanceAggregate("cost", "avg", 200).check_instance(instance, group)
        assert MinInstanceAggregate("cost", "min", 100).check_instance(instance, group)
        assert MaxInstanceAggregate("cost", "max", 300).check_instance(instance, group)

    def test_vacuous_when_attribute_missing(self):
        instance = make_instance("a", "b")
        group = frozenset({"a", "b"})
        assert MaxInstanceAggregate("cost", "sum", 0).check_instance(instance, group)
        assert MinInstanceAggregate("cost", "avg", 1e9).check_instance(instance, group)

    def test_monotonicity_by_aggregate(self):
        assert (
            MinInstanceAggregate("cost", "sum", 1).monotonicity
            is Monotonicity.MONOTONIC
        )
        assert (
            MaxInstanceAggregate("cost", "sum", 1).monotonicity
            is Monotonicity.ANTI_MONOTONIC
        )
        assert (
            MaxInstanceAggregate("cost", "avg", 1).monotonicity
            is Monotonicity.NON_MONOTONIC
        )
        assert (
            MinInstanceAggregate("cost", "avg", 1).monotonicity
            is Monotonicity.NON_MONOTONIC
        )

    def test_unknown_aggregate(self):
        with pytest.raises(ConstraintError):
            MaxInstanceAggregate("cost", "median", 1)

    def test_distinct_attribute_bounds(self):
        instance = make_instance(
            ("a", {"org:role": "clerk"}), ("b", {"org:role": "boss"})
        )
        group = frozenset({"a", "b"})
        assert MaxDistinctInstanceAttribute("org:role", 2).check_instance(instance, group)
        assert not MaxDistinctInstanceAttribute("org:role", 1).check_instance(
            instance, group
        )
        assert MinDistinctInstanceAttribute("org:role", 2).check_instance(instance, group)

    def test_duration_bounds(self, running_log):
        # First trace spans 5 hours (events one hour apart).
        instance = list(running_log[0])
        group = running_log[0].class_set
        assert MaxInstanceDuration(5 * 3600).check_instance(instance, group)
        assert not MaxInstanceDuration(3600).check_instance(instance, group)
        assert MinInstanceDuration(3600).check_instance(instance, group)
        assert MaxConsecutiveGap(3600).check_instance(instance, group)
        assert not MaxConsecutiveGap(1800).check_instance(instance, group)

    def test_duration_vacuous_without_timestamps(self):
        instance = make_instance("a", "b")
        group = frozenset({"a", "b"})
        assert MaxInstanceDuration(0).check_instance(instance, group)
        assert MaxConsecutiveGap(0).check_instance(instance, group)

    def test_events_per_class(self):
        instance = make_instance("a", "a", "b")
        group = frozenset({"a", "b"})
        assert MaxEventsPerClass(2).check_instance(instance, group)
        assert not MaxEventsPerClass(1).check_instance(instance, group)
        assert MinEventsPerClass(1).check_instance(instance, group)
        assert not MinEventsPerClass(2).check_instance(instance, group)

    def test_min_events_scoped_classes(self):
        instance = make_instance("a", "a", "b")
        group = frozenset({"a", "b"})
        constraint = MinEventsPerClass(2, classes=["a"])
        assert constraint.check_instance(instance, group)

    def test_at_least_fraction(self):
        inner = MaxInstanceAggregate("cost", "sum", 100)
        loose = AtLeastFraction(inner, 0.5)
        good = make_instance(("a", {"cost": 50}))
        bad = make_instance(("a", {"cost": 500}))
        group = frozenset({"a"})
        assert loose.check_instances([good, good, bad], group)
        assert not loose.check_instances([good, bad, bad], group)
        assert loose.check_instances([], group)  # vacuous

    def test_at_least_fraction_validation(self):
        inner = MaxInstanceAggregate("cost", "sum", 100)
        with pytest.raises(ValueError):
            AtLeastFraction(inner, 0.0)
        with pytest.raises(TypeError):
            AtLeastFraction(MaxGroupSize(2), 0.5)

    def test_fraction_inherits_monotonicity(self):
        inner = MaxInstanceAggregate("cost", "sum", 100)
        assert AtLeastFraction(inner, 0.9).monotonicity is inner.monotonicity


class TestCheckingMode:
    def test_anti_monotonic_dominates(self):
        mode = infer_checking_mode([MinGroupSize(2), MaxGroupSize(5)])
        assert mode is CheckingMode.ANTI_MONOTONIC

    def test_all_monotonic(self):
        mode = infer_checking_mode([MinGroupSize(2)])
        assert mode is CheckingMode.MONOTONIC

    def test_non_monotonic_fallback(self):
        mode = infer_checking_mode([MustLink("a", "b")])
        assert mode is CheckingMode.NON_MONOTONIC

    def test_grouping_constraints_ignored(self):
        mode = infer_checking_mode([MaxGroups(3), MinGroupSize(2)])
        assert mode is CheckingMode.MONOTONIC

    def test_empty_set(self):
        assert infer_checking_mode([]) is CheckingMode.NON_MONOTONIC


class TestConstraintSet:
    def test_categorization(self):
        constraint_set = ConstraintSet(
            [MaxGroups(3), MaxGroupSize(5), MaxInstanceAggregate("cost", "sum", 10)]
        )
        assert len(constraint_set.grouping) == 1
        assert len(constraint_set.class_based) == 1
        assert len(constraint_set.instance_based) == 1
        assert constraint_set.needs_instances

    def test_bounds(self):
        constraint_set = ConstraintSet([MaxGroups(5), MaxGroups(3), MinGroups(2)])
        assert constraint_set.max_groups == 3
        assert constraint_set.min_groups == 2

    def test_rejects_non_constraints(self):
        with pytest.raises(ConstraintError):
            ConstraintSet(["nope"])

    def test_holds_requires_instance_provider(self, running_log):
        constraint_set = ConstraintSet([MaxInstanceAggregate("cost", "sum", 10)])
        with pytest.raises(ConstraintError):
            constraint_set.holds_for_group(frozenset({"rcp"}), None, None)

    def test_describe(self):
        constraint_set = ConstraintSet([MaxGroupSize(8)])
        assert "|g| <= 8" in constraint_set.describe()
        assert ConstraintSet([]).describe() == "(no constraints)"

    def test_check_grouping_size(self):
        constraint_set = ConstraintSet([MaxGroups(3), MinGroups(2)])
        assert constraint_set.check_grouping_size(2)
        assert not constraint_set.check_grouping_size(4)
        assert not constraint_set.check_grouping_size(1)


class TestClassAttributeView:
    def test_collects_values(self, running_log):
        view = class_attribute_view(running_log)
        assert view["rcp"]["org:role"] == frozenset({"clerk"})
        assert view["acc"]["org:role"] == frozenset({"manager"})

    def test_numeric_attributes_collected(self, running_log):
        view = class_attribute_view(running_log)
        assert 5.0 in view["rcp"]["duration"]


class TestDiagnostics:
    def test_reports_uncovered_classes(self, running_log):
        constraint_set = ConstraintSet([])
        report = constraint_set.diagnose(running_log, None, None, candidates=[])
        assert set(report.uncovered_classes) == set(running_log.classes)
        assert "not covered" in report.summary()

    def test_reports_class_violations(self, running_log):
        constraint_set = ConstraintSet([RequiredClasses({"rcp"})])
        view = class_attribute_view(running_log)
        report = constraint_set.diagnose(running_log, view, None, candidates=[])
        assert "acc" in report.class_constraint_violations

    def test_reports_instance_violation_fractions(self, running_log):
        from repro.core.instances import InstanceIndex

        constraint_set = ConstraintSet(
            [MinInstanceAggregate("duration", "sum", 1e9)]
        )
        index = InstanceIndex(running_log)
        report = constraint_set.diagnose(running_log, None, index.events, [])
        assert report.instance_violation_fractions
        fractions = next(iter(report.instance_violation_fractions.values()))
        assert all(0 < value <= 1 for value in fractions.values())

    def test_clean_summary_when_feasible(self, running_log):
        constraint_set = ConstraintSet([])
        report = constraint_set.diagnose(
            running_log, None, None, candidates=[frozenset(running_log.classes)]
        )
        assert report.summary() == "no diagnostic findings"
