"""Additional property-based tests: noise, streaming, replay, selection."""

from hypothesis import given, settings, strategies as st

from repro.core.alt_distance import ALTERNATIVE_DISTANCES
from repro.core.distance import DistanceFunction
from repro.core.lazy_selection import select_with_grouping_rules
from repro.core.selection import select_optimal_grouping
from repro.core.candidates import exhaustive_candidates
from repro.constraints import ConstraintSet
from repro.datasets.noise import drop_noise, duplicate_noise, insert_noise, swap_noise
from repro.eventlog.events import Event, Trace, log_from_variants
from repro.mining.alpha import alpha_miner
from repro.mining.petri import token_replay
from repro.streaming.window import TraceWindow

CLASSES = ["a", "b", "c", "d"]

variant_strategy = st.lists(st.sampled_from(CLASSES), min_size=1, max_size=6)
log_strategy = st.lists(variant_strategy, min_size=1, max_size=6).map(
    log_from_variants
)
rate_strategy = st.floats(min_value=0.0, max_value=1.0)
seed_strategy = st.integers(min_value=0, max_value=1_000)


# -- noise invariants ----------------------------------------------------------


@given(log=log_strategy, rate=rate_strategy, seed=seed_strategy)
@settings(max_examples=40)
def test_swap_preserves_event_multiset(log, rate, seed):
    noisy = swap_noise(log, rate, seed=seed)
    for original, corrupted in zip(log, noisy):
        assert sorted(corrupted.classes) == sorted(original.classes)


@given(log=log_strategy, rate=rate_strategy, seed=seed_strategy)
@settings(max_examples=40)
def test_drop_never_empties_traces(log, rate, seed):
    noisy = drop_noise(log, rate, seed=seed)
    assert len(noisy) == len(log)
    assert all(len(trace) >= 1 for trace in noisy)


@given(log=log_strategy, rate=rate_strategy, seed=seed_strategy)
@settings(max_examples=40)
def test_duplicate_and_insert_add_no_new_classes(log, rate, seed):
    assert duplicate_noise(log, rate, seed=seed).classes <= log.classes
    assert insert_noise(log, rate, seed=seed).classes <= log.classes


# -- streaming window invariants --------------------------------------------------


@given(
    capacity=st.integers(min_value=1, max_value=5),
    arrivals=st.lists(variant_strategy, min_size=0, max_size=12),
)
@settings(max_examples=40)
def test_window_holds_most_recent_traces(capacity, arrivals):
    window = TraceWindow(capacity)
    traces = [Trace([Event(cls) for cls in variant]) for variant in arrivals]
    for trace in traces:
        window.push(trace)
    assert len(window) == min(capacity, len(traces))
    retained = [t.variant() for t in window.as_log()]
    expected = [t.variant() for t in traces[-capacity:]]
    assert retained == expected
    assert window.total_seen == len(traces)


# -- replay invariants --------------------------------------------------------------


@given(log=log_strategy)
@settings(max_examples=25, deadline=None)
def test_replay_fitness_bounded(log):
    net = alpha_miner(log)
    replay = token_replay(net, log)
    assert 0.0 <= replay.fitness <= 1.0
    assert replay.fitting_traces <= replay.total_traces


# -- distance invariants (alternatives) -----------------------------------------------


@given(
    log=log_strategy,
    group=st.sets(st.sampled_from(CLASSES), min_size=1, max_size=4).map(frozenset),
    name=st.sampled_from(sorted(ALTERNATIVE_DISTANCES)),
)
@settings(max_examples=40)
def test_alternative_distances_non_negative(log, group, name):
    distance = ALTERNATIVE_DISTANCES[name](log)
    assert distance.group_distance(group) >= 0.0


# -- lazy selection equals plain selection without rules --------------------------------


@given(log=log_strategy)
@settings(max_examples=15, deadline=None)
def test_lazy_selection_matches_plain_without_rules(log):
    candidates = exhaustive_candidates(log, ConstraintSet([])).groups
    distance = DistanceFunction(log)
    plain = select_optimal_grouping(log, candidates, distance, backend="bnb")
    lazy = select_with_grouping_rules(
        log, candidates, distance, rules=[], backend="bnb"
    )
    assert plain.feasible == lazy.feasible
    if plain.feasible:
        assert abs(plain.objective - lazy.objective) < 1e-9
