"""Edge cases of the experiment runner and baseline error handling."""

import pytest

from repro.datasets.collection import TABLE_III_SPECS, build_log
from repro.exceptions import ReproError
from repro.experiments.runner import run_experiment, solve_problem


@pytest.fixture(scope="module")
def log():
    spec = next(spec for spec in TABLE_III_SPECS if spec.name == "credit")
    return build_log(spec, max_traces=25)


class TestBaselineScoping:
    def test_greedy_with_grouping_constraint_reports_unsolved(self, log):
        """BL_G cannot enforce grouping constraints: runner records the
        failure instead of crashing."""
        result = solve_problem(log, "Gr", "BLG", log_name="credit")
        assert not result.solved
        assert "grouping constraints" in result.error

    def test_greedy_with_infeasible_singletons_reports_unsolved(self, running_log):
        """A constraint the singleton start violates makes BL_G fail."""
        # duration sum >= absurd: every singleton instance violates.
        from repro.constraints import ConstraintSet, MinInstanceAggregate
        from repro.baselines.greedy import greedy_grouping
        from repro.exceptions import ConstraintError

        constraints = ConstraintSet([MinInstanceAggregate("duration", "sum", 1e12)])
        with pytest.raises(ConstraintError, match="singleton"):
            greedy_grouping(running_log, constraints)

    def test_blp_independent_of_constraint_details(self, log):
        """BL_P only consumes the target group count."""
        result = solve_problem(log, "BL4", "BLP", log_name="credit")
        assert result.solved
        assert result.num_groups == max(1, len(log.classes) // 2)


class TestRunnerBehavior:
    def test_unsolved_rows_have_no_measures(self, running_log):
        result = solve_problem(running_log, "Gr", "BLG", log_name="re")
        assert result.size_red is None
        assert result.complexity_red is None
        assert result.silhouette is None

    def test_seconds_always_recorded(self, log):
        result = solve_problem(log, "BL1", "DFGk", log_name="credit")
        assert result.seconds > 0

    def test_run_experiment_skips_inapplicable(self, running_log):
        # The running example has no 'origin' attribute: BL3 is skipped.
        report = run_experiment({"re": running_log}, ["BL3"], ["DFGk"])
        assert report.rows == []

    def test_invalid_approach_raises(self, log):
        with pytest.raises(ReproError):
            solve_problem(log, "A", "AlphaMiner")

    def test_timeout_still_produces_row(self, log):
        result = solve_problem(
            log, "BL1", "Exh", log_name="credit", candidate_timeout=0.0
        )
        # Timeout leaves partial candidates; singletons may still cover.
        assert result.approach == "Exh"
        assert isinstance(result.solved, bool)
