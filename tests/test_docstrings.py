"""Documentation hygiene: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test
enforces it mechanically for all modules of the package.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home module
        if not inspect.getdoc(member):
            undocumented.append(name)
            continue
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not inspect.getdoc(method):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
