"""Unit tests for grouping-level constraints and lazy selection."""

import pytest

from repro.constraints.instancebased import MaxInstanceAggregate
from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.exclusive import merge_exclusive_candidates
from repro.core.grouping_constraints import (
    MaxGroupSizeSpread,
    MaxMeanAggregateOverGrouping,
    MaxViolatingGroups,
)
from repro.core.instances import InstanceIndex
from repro.core.lazy_selection import select_with_grouping_rules
from repro.core.selection import select_optimal_grouping
from repro.eventlog.events import Event
from repro.exceptions import ConstraintError, SolverError
from repro.mip.result import SolverStatus


def instance_of(*specs):
    return [Event(cls, attrs) for cls, attrs in specs]


class TestRules:
    def test_mean_aggregate_rule(self):
        rule = MaxMeanAggregateOverGrouping("cost", "sum", 100.0)
        cheap = {frozenset({"a"}): [instance_of(("a", {"cost": 50}))]}
        pricey = {frozenset({"a"}): [instance_of(("a", {"cost": 500}))]}
        assert rule.check(cheap)
        assert not rule.check(pricey)

    def test_mean_aggregate_vacuous(self):
        rule = MaxMeanAggregateOverGrouping("cost", "sum", 1.0)
        assert rule.check({frozenset({"a"}): [instance_of(("a", {}))]})
        assert rule.check({})

    def test_max_violating_groups(self):
        inner = MaxInstanceAggregate("cost", "sum", 100)
        rule = MaxViolatingGroups(inner, budget=1)
        good = [instance_of(("a", {"cost": 10}))]
        bad = [instance_of(("a", {"cost": 999}))]
        assert rule.check({frozenset({"a"}): bad, frozenset({"b"}): good})
        assert not rule.check({frozenset({"a"}): bad, frozenset({"b"}): bad})

    def test_max_violating_validation(self):
        inner = MaxInstanceAggregate("cost", "sum", 100)
        with pytest.raises(ConstraintError):
            MaxViolatingGroups(inner, budget=-1)
        with pytest.raises(ConstraintError):
            MaxViolatingGroups("nope", budget=1)

    def test_size_spread(self):
        rule = MaxGroupSizeSpread(1)
        balanced = {frozenset({"a", "b"}): [], frozenset({"c"}): []}
        lopsided = {frozenset({"a", "b", "c"}): [], frozenset({"d"}): []}
        assert rule.check(balanced)
        assert not rule.check(lopsided)
        assert rule.check({})

    def test_describe(self):
        assert "spread" not in MaxGroupSizeSpread(2).describe()
        assert "<= 2" in MaxGroupSizeSpread(2).describe()


@pytest.fixture(scope="module")
def selection_inputs(running_log, role_constraints):
    checker = GroupChecker(running_log, role_constraints)
    distance = DistanceFunction(running_log, checker.instances)
    candidates = dfg_candidates(running_log, role_constraints, checker=checker).groups
    candidates, _ = merge_exclusive_candidates(running_log, candidates, checker)
    return candidates, distance, checker.instances


class TestLazySelection:
    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    def test_no_rules_matches_plain_selection(
        self, running_log, selection_inputs, backend
    ):
        candidates, distance, index = selection_inputs
        lazy = select_with_grouping_rules(
            running_log, candidates, distance, rules=[], backend=backend
        )
        plain = select_optimal_grouping(
            running_log, candidates, distance, backend=backend
        )
        assert lazy.feasible
        assert lazy.objective == pytest.approx(plain.objective)
        assert lazy.iterations == 1
        assert lazy.cuts_added == 0

    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    def test_spread_rule_forces_different_grouping(
        self, running_log, selection_inputs, backend
    ):
        candidates, distance, index = selection_inputs
        # The unconstrained optimum has groups of sizes {3, 3, 1, 1}:
        # spread 2.  Forbid that shape.
        rule = MaxGroupSizeSpread(1)
        result = select_with_grouping_rules(
            running_log,
            candidates,
            distance,
            rules=[rule],
            instance_index=index,
            backend=backend,
        )
        assert result.feasible
        sizes = [len(group) for group in result.grouping]
        assert max(sizes) - min(sizes) <= 1
        assert result.cuts_added >= 1
        assert result.rejected_groupings

    def test_costlier_than_unconstrained(self, running_log, selection_inputs):
        candidates, distance, index = selection_inputs
        unconstrained = select_optimal_grouping(running_log, candidates, distance)
        constrained = select_with_grouping_rules(
            running_log,
            candidates,
            distance,
            rules=[MaxGroupSizeSpread(1)],
            instance_index=index,
        )
        assert constrained.objective >= unconstrained.objective - 1e-9

    def test_infeasible_when_rules_unsatisfiable(self, running_log, selection_inputs):
        candidates, distance, index = selection_inputs
        # Budget of zero violating groups under an impossible inner
        # constraint rejects every grouping; the cut loop must exhaust
        # the (finite) groupings and report infeasibility.
        impossible = MaxViolatingGroups(
            MaxInstanceAggregate("duration", "sum", -1.0), budget=0
        )
        result = select_with_grouping_rules(
            running_log,
            candidates,
            distance,
            rules=[impossible],
            instance_index=index,
            max_iterations=10_000,
        )
        assert not result.feasible
        assert result.status is SolverStatus.INFEASIBLE

    def test_iteration_cap(self, running_log, selection_inputs):
        candidates, distance, index = selection_inputs
        impossible = MaxViolatingGroups(
            MaxInstanceAggregate("duration", "sum", -1.0), budget=0
        )
        with pytest.raises(SolverError):
            select_with_grouping_rules(
                running_log,
                candidates,
                distance,
                rules=[impossible],
                instance_index=index,
                max_iterations=2,
            )

    def test_unknown_backend(self, running_log, selection_inputs):
        candidates, distance, _ = selection_inputs
        with pytest.raises(SolverError):
            select_with_grouping_rules(
                running_log, candidates, distance, rules=[], backend="cplex"
            )

    def test_mean_cost_rule_end_to_end(self, running_log, selection_inputs):
        candidates, distance, index = selection_inputs
        rule = MaxMeanAggregateOverGrouping("duration", "avg", 1e9)  # loose
        result = select_with_grouping_rules(
            running_log, candidates, distance, rules=[rule], instance_index=index
        )
        assert result.feasible
        assert result.cuts_added == 0
