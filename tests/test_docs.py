"""The documentation site stays true: links, examples, generated pages.

Runs the same checks as the CI ``docs-check`` job (``docs/check.py``)
inside the tier-1 suite, so a PR cannot land a dead link, a drifting
fenced example, or a stale generated API page.
"""

import sys
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"

sys.path.insert(0, str(DOCS_DIR))
try:
    import check as docs_check
    import generate_api
finally:
    sys.path.pop(0)


REQUIRED_PAGES = ("architecture.md", "operations.md", "api.md")


@pytest.mark.parametrize("page", REQUIRED_PAGES)
def test_required_page_exists(page):
    assert (DOCS_DIR / page).is_file(), f"docs/{page} is missing"


def test_no_dead_relative_links():
    assert docs_check.check_links() == []


def test_fenced_examples_run():
    assert docs_check.check_examples() == []


def test_api_page_is_fresh():
    assert docs_check.check_api_freshness() == []


def test_api_page_covers_the_contracted_surface():
    text = (DOCS_DIR / "api.md").read_text(encoding="utf-8")
    for name in (
        "Gecco", "GeccoConfig", "AbstractionJob", "ArtifactCache",
        "PoolExecutor", "DistributedExecutor", "ConstraintSet",
    ):
        assert f"`{name}`" in text, f"{name} missing from docs/api.md"


def test_generator_is_deterministic():
    assert generate_api.render_api_page() == generate_api.render_api_page()
