"""Unit tests for Step 3: abstracted-log creation."""

import pytest

from repro.core.abstraction import abstract_log, abstract_trace
from repro.core.grouping import Grouping
from repro.core.instances import InstanceIndex
from repro.datasets import PAPER_OPTIMAL_GROUPS, interleaving_trace, running_example_log
from repro.eventlog.events import EventLog
from repro.exceptions import GroupingError


@pytest.fixture(scope="module")
def paper_grouping(running_log):
    return Grouping(
        PAPER_OPTIMAL_GROUPS,
        running_log.classes,
        labels={
            frozenset({"rcp", "ckc", "ckt"}): "clrk1",
            frozenset({"prio", "inf", "arv"}): "clrk2",
        },
    )


class TestCompleteStrategy:
    def test_sigma1_abstraction(self, running_log, paper_grouping):
        abstracted = abstract_log(running_log, paper_grouping)
        # σ1 = <rcp, ckc, acc, prio, inf, arv> -> <clrk1, acc, clrk2>.
        assert [e.event_class for e in abstracted[0]] == ["clrk1", "acc", "clrk2"]

    def test_sigma4_loop_abstraction(self, running_log, paper_grouping):
        abstracted = abstract_log(running_log, paper_grouping)
        # σ4 contains two clrk1 instances (rejected, then accepted round).
        assert [e.event_class for e in abstracted[3]] == [
            "clrk1", "rej", "clrk1", "acc", "clrk2",
        ]

    def test_events_carry_provenance(self, running_log, paper_grouping):
        abstracted = abstract_log(running_log, paper_grouping)
        first = abstracted[0][0]
        assert first["gecco:group"] == "ckc,ckt,rcp"
        assert first["gecco:instance_size"] == 2
        assert first["lifecycle:transition"] == "complete"

    def test_timestamps_are_instance_completion(self, running_log, paper_grouping):
        abstracted = abstract_log(running_log, paper_grouping)
        original = running_log[0]
        # clrk1's completion in σ1 is ckc (position 1).
        assert abstracted[0][0].timestamp == original[1].timestamp
        assert abstracted[0][0]["gecco:start_timestamp"] == original[0].timestamp

    def test_trace_attributes_preserved(self, running_log, paper_grouping):
        abstracted = abstract_log(running_log, paper_grouping)
        assert abstracted[0].case_id == running_log[0].case_id

    def test_log_attribute_records_strategy(self, running_log, paper_grouping):
        abstracted = abstract_log(running_log, paper_grouping)
        assert abstracted.attributes["gecco:abstraction_strategy"] == "complete"


class TestStartCompleteStrategy:
    def test_paper_sigma5_interleaving(self, paper_grouping):
        """σ5 = <rcp, ckc, prio, acc, inf, arv> (paper §V-D).

        Start+complete must expose that clrk2 starts before acc and
        completes after: <clrk1_s?, ..., clrk2_s, acc, clrk2_c>.
        The paper shows <clrk1_s, clrk1_c, clrk2_s, acc, clrk2_c>.
        """
        log = EventLog([interleaving_trace()])
        index = InstanceIndex(log)
        abstracted = abstract_trace(
            log[0], paper_grouping, index, 0, strategy="start_complete"
        )
        assert [e.event_class for e in abstracted] == [
            "clrk1_s", "clrk1_c", "clrk2_s", "acc", "clrk2_c",
        ]

    def test_complete_strategy_hides_interleaving(self, paper_grouping):
        log = EventLog([interleaving_trace()])
        index = InstanceIndex(log)
        abstracted = abstract_trace(
            log[0], paper_grouping, index, 0, strategy="complete"
        )
        assert [e.event_class for e in abstracted] == ["clrk1", "acc", "clrk2"]

    def test_single_event_instances_emit_plain_label(self, running_log, paper_grouping):
        abstracted = abstract_log(
            running_log, paper_grouping, strategy="start_complete"
        )
        classes = [e.event_class for e in abstracted[0]]
        assert "acc" in classes  # unary instance: no _s/_c pair
        assert "acc_s" not in classes

    def test_lifecycle_attributes(self, running_log, paper_grouping):
        abstracted = abstract_log(
            running_log, paper_grouping, strategy="start_complete"
        )
        lifecycles = {e["lifecycle:transition"] for e in abstracted[0]}
        assert lifecycles == {"start", "complete"}


class TestValidation:
    def test_unknown_strategy(self, running_log, paper_grouping):
        with pytest.raises(GroupingError):
            abstract_log(running_log, paper_grouping, strategy="middle")

    def test_grouping_must_match_log(self, paper_grouping):
        from repro.eventlog.events import log_from_variants

        other = log_from_variants([["x", "y"]])
        with pytest.raises(GroupingError):
            abstract_log(other, paper_grouping)
