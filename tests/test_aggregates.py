"""Unit tests for instance aggregation helpers."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.constraints import aggregates
from repro.eventlog.events import TIMESTAMP_KEY, Event


def stamped(cls, offset_minutes, **attrs):
    base = datetime(2021, 1, 1, tzinfo=timezone.utc)
    attrs[TIMESTAMP_KEY] = base + timedelta(minutes=offset_minutes)
    return Event(cls, attrs)


class TestAttributeValues:
    def test_values_in_order(self):
        instance = [Event("a", {"x": 1}), Event("b"), Event("c", {"x": 3})]
        assert aggregates.attribute_values(instance, "x") == [1, 3]

    def test_numeric_skips_non_numeric_and_bool(self):
        instance = [
            Event("a", {"x": 1}),
            Event("b", {"x": "text"}),
            Event("c", {"x": True}),
            Event("d", {"x": 2.5}),
        ]
        assert aggregates.numeric_values(instance, "x") == [1.0, 2.5]

    def test_distinct_values(self):
        instance = [Event("a", {"x": 1}), Event("b", {"x": 1}), Event("c", {"x": 2})]
        assert aggregates.distinct_values(instance, "x") == {1, 2}


class TestAggregate:
    @pytest.fixture
    def instance(self):
        return [Event("a", {"v": 10}), Event("b", {"v": 20}), Event("c", {"v": 30})]

    @pytest.mark.parametrize(
        "how,expected",
        [("sum", 60), ("avg", 20), ("min", 10), ("max", 30), ("count", 3), ("distinct", 3)],
    )
    def test_aggregates(self, instance, how, expected):
        assert aggregates.aggregate(instance, "v", how) == expected

    def test_missing_attribute_returns_none(self, instance):
        assert aggregates.aggregate(instance, "missing", "sum") is None
        assert aggregates.aggregate(instance, "missing", "count") == 0
        assert aggregates.aggregate(instance, "missing", "distinct") == 0

    def test_unknown_aggregate(self, instance):
        with pytest.raises(ValueError):
            aggregates.aggregate(instance, "v", "median")


class TestTimeAggregates:
    def test_duration(self):
        instance = [stamped("a", 0), stamped("b", 30), stamped("c", 45)]
        assert aggregates.instance_duration_seconds(instance) == 45 * 60

    def test_duration_single_event(self):
        assert aggregates.instance_duration_seconds([stamped("a", 0)]) == 0.0

    def test_duration_none_without_timestamps(self):
        assert aggregates.instance_duration_seconds([Event("a")]) is None

    def test_max_gap(self):
        instance = [stamped("a", 0), stamped("b", 10), stamped("c", 40)]
        assert aggregates.max_gap_seconds(instance) == 30 * 60

    def test_max_gap_needs_two_stamps(self):
        assert aggregates.max_gap_seconds([stamped("a", 0)]) is None
        assert aggregates.max_gap_seconds([stamped("a", 0), Event("b")]) is None


class TestEventsPerClass:
    def test_counts(self):
        instance = [Event("a"), Event("a"), Event("b")]
        assert aggregates.events_per_class(instance) == {"a": 2, "b": 1}

    def test_empty(self):
        assert aggregates.events_per_class([]) == {}
