"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.candidates import exhaustive_candidates
from repro.core.checker import GroupChecker
from repro.core.distance import DistanceFunction, interrupts
from repro.core.grouping import Grouping
from repro.core.instances import instances_in_trace
from repro.core.selection import build_program, select_optimal_grouping
from repro.constraints import ConstraintSet, MaxGroupSize
from repro.eventlog import xes
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import Event, EventLog, Trace, log_from_variants
from repro.mip.branch_and_bound import SetPartitionSolver
from repro.mip import scipy_backend

# -- strategies ----------------------------------------------------------------

CLASSES = ["a", "b", "c", "d", "e"]

variant_strategy = st.lists(
    st.sampled_from(CLASSES), min_size=1, max_size=8
)

log_strategy = st.lists(variant_strategy, min_size=1, max_size=8).map(
    log_from_variants
)

group_strategy = st.sets(st.sampled_from(CLASSES), min_size=1, max_size=5).map(
    frozenset
)


# -- instance invariants ---------------------------------------------------------


@given(variant=variant_strategy, group=group_strategy)
def test_instances_partition_the_projection(variant, group):
    """The instances of a group partition the projected positions, in order."""
    trace = Trace([Event(cls) for cls in variant])
    instances = instances_in_trace(trace, group)
    flattened = [position for instance in instances for position in instance]
    expected = [
        index for index, cls in enumerate(variant) if cls in group
    ]
    assert flattened == expected


@given(variant=variant_strategy, group=group_strategy)
def test_repeat_split_instances_have_distinct_classes(variant, group):
    trace = Trace([Event(cls) for cls in variant])
    for instance in instances_in_trace(trace, group):
        classes = [trace[p].event_class for p in instance]
        assert len(classes) == len(set(classes))


@given(variant=variant_strategy, group=group_strategy)
def test_interrupts_bounded_by_span(variant, group):
    trace = Trace([Event(cls) for cls in variant])
    for instance in instances_in_trace(trace, group):
        assert 0 <= interrupts(instance) <= len(variant)


# -- distance invariants ----------------------------------------------------------


@given(log=log_strategy, group=group_strategy)
@settings(max_examples=60)
def test_distance_non_negative(log, group):
    assert DistanceFunction(log).group_distance(group) >= 0.0


@given(log=log_strategy)
@settings(max_examples=40)
def test_singleton_distance_exactly_one_when_present(log):
    distance = DistanceFunction(log)
    for cls in log.classes:
        assert distance.group_distance({cls}) == 1.0


@given(log=log_strategy, groups=st.lists(group_strategy, min_size=1, max_size=4))
@settings(max_examples=40)
def test_grouping_distance_is_sum(log, groups):
    distance = DistanceFunction(log)
    assert abs(
        distance.grouping_distance(groups)
        - sum(distance.group_distance(g) for g in groups)
    ) < 1e-9


# -- candidate invariants ----------------------------------------------------------


@given(log=log_strategy)
@settings(max_examples=25, deadline=None)
def test_candidates_occur_and_satisfy_constraints(log):
    constraints = ConstraintSet([MaxGroupSize(3)])
    result = exhaustive_candidates(log, constraints)
    checker = GroupChecker(log, constraints)
    for group in result.groups:
        assert log.occurs(group)
        assert len(group) <= 3
        assert checker.holds(group)


@given(log=log_strategy)
@settings(max_examples=25, deadline=None)
def test_dfg_edges_imply_co_occurrence(log):
    dfg = compute_dfg(log)
    for a, b in dfg.edge_counts:
        assert log.occurs({a, b})


# -- selection / MIP invariants -----------------------------------------------------


@given(log=log_strategy)
@settings(max_examples=25, deadline=None)
def test_selected_grouping_is_exact_cover(log):
    constraints = ConstraintSet([])
    candidates = exhaustive_candidates(log, constraints).groups
    distance = DistanceFunction(log)
    result = select_optimal_grouping(log, candidates, distance, backend="bnb")
    assert result.feasible
    covered = sorted(cls for group in result.grouping for cls in group)
    assert covered == sorted(log.classes)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_backends_agree_on_random_partitions(seed):
    rng = random.Random(seed)
    universe = [f"c{i}" for i in range(rng.randint(2, 6))]
    candidates = [frozenset({cls}) for cls in universe]
    for _ in range(rng.randint(0, 10)):
        size = rng.randint(1, len(universe))
        candidates.append(frozenset(rng.sample(universe, size)))
    candidates = list(dict.fromkeys(candidates))
    costs = [round(rng.uniform(0.0, 2.0), 3) for _ in candidates]

    bnb = SetPartitionSolver(universe, candidates, costs).solve()
    program = build_program(candidates, costs, frozenset(universe))
    hi = scipy_backend.solve(program)
    assert bnb.status == hi.status
    if bnb.is_optimal:
        assert abs(bnb.objective - hi.objective) < 1e-6


# -- grouping invariants -------------------------------------------------------------


@given(log=log_strategy)
@settings(max_examples=30)
def test_singleton_grouping_always_valid(log):
    grouping = Grouping([[cls] for cls in log.classes], log.classes)
    assert len(grouping) == len(log.classes)


# -- serialization invariants ----------------------------------------------------------


@given(log=log_strategy)
@settings(max_examples=30)
def test_xes_roundtrip_preserves_variants(log):
    recovered = xes.loads(xes.dumps(log))
    assert [t.variant() for t in recovered] == [t.variant() for t in log]
