"""Fingerprints: canonical JSON, log digests, job content addresses."""

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.constraints import ConstraintSet
from repro.constraints.parser import constraint_to_spec, parse_constraint
from repro.core.gecco import GeccoConfig
from repro.datasets import running_example_log
from repro.exceptions import ReproError
from repro.service import AbstractionJob, LogRef
from repro.service.fingerprint import canonical_json, log_digest
from repro.service.jobs import config_from_dict, config_to_dict

SPEC_SAMPLES = [
    {"type": "max_groups", "bound": 4},
    {"type": "min_groups", "bound": 2},
    {"type": "exact_groups", "count": 3},
    {"type": "max_group_size", "bound": 8},
    {"type": "min_group_size", "bound": 1},
    {"type": "cannot_link", "class_a": "a", "class_b": "b"},
    {"type": "must_link", "class_a": "a", "class_b": "b"},
    {"type": "max_distinct_class_attribute", "key": "org:role", "bound": 1},
    {"type": "min_distinct_class_attribute", "key": "org:role", "bound": 1},
    {"type": "required_classes", "allowed": ["a", "b", "c"]},
    {"type": "max_instance_aggregate", "key": "cost", "how": "sum", "threshold": 500.0},
    {"type": "min_instance_aggregate", "key": "cost", "how": "sum", "threshold": 1.0},
    {"type": "max_distinct_instance_attribute", "key": "org:role", "bound": 3},
    {"type": "min_distinct_instance_attribute", "key": "doc", "bound": 2},
    {"type": "max_instance_duration", "seconds": 600.0},
    {"type": "min_instance_duration", "seconds": 1.0},
    {"type": "max_consecutive_gap", "seconds": 60.0},
    {"type": "max_events_per_class", "bound": 2},
    {"type": "min_events_per_class", "bound": 1, "classes": ["a", "b"]},
    {
        "type": "max_instance_aggregate",
        "key": "cost",
        "how": "sum",
        "threshold": 500.0,
        "fraction": 0.95,
    },
]


class TestCanonicalJson:
    def test_key_order_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_whitespace_free(self):
        rendered = canonical_json({"a": [1, 2], "b": "x"})
        assert " " not in rendered

    def test_sets_ordered(self):
        assert canonical_json(frozenset("cab")) == '["a","b","c"]'

    def test_unknown_objects_hashable(self):
        rendered = canonical_json({"x": object})
        assert rendered.startswith('{"x":{"$repr"')


class TestLogDigest:
    def test_equal_content_equal_digest(self):
        assert log_digest(running_example_log()) == log_digest(running_example_log())

    def test_content_changes_digest(self, running_log):
        mutated = running_log.copy()
        mutated[0][0].attributes["extra"] = 1
        assert log_digest(mutated) != log_digest(running_log)


class TestConstraintSpecs:
    @pytest.mark.parametrize("spec", SPEC_SAMPLES, ids=lambda s: s["type"])
    def test_spec_round_trip(self, spec):
        constraint = parse_constraint(spec)
        rebuilt_spec = constraint_to_spec(constraint)
        # Round-trips to an equivalent constraint with an identical spec.
        assert constraint_to_spec(parse_constraint(rebuilt_spec)) == rebuilt_spec
        for key, value in spec.items():
            assert rebuilt_spec[key] == value


class TestConstraintSetCanonicalJson:
    def test_shuffled_orders_identical_json(self):
        constraints = [parse_constraint(spec) for spec in SPEC_SAMPLES]
        reference = ConstraintSet(list(constraints)).to_json()
        rng = random.Random(7)
        for _ in range(5):
            shuffled = list(constraints)
            rng.shuffle(shuffled)
            assert ConstraintSet(shuffled).to_json() == reference

    def test_whitespace_stable(self):
        text = ConstraintSet(
            [parse_constraint({"type": "max_group_size", "bound": 3})]
        ).to_json()
        assert text == json.dumps(json.loads(text), sort_keys=True, separators=(",", ":"))

    def test_json_round_trip(self):
        original = ConstraintSet([parse_constraint(spec) for spec in SPEC_SAMPLES])
        rebuilt = ConstraintSet.from_json(original.to_json())
        assert rebuilt.to_json() == original.to_json()
        assert len(rebuilt) == len(original)


class TestJobFingerprint:
    def _job(self, shuffle_seed=None, config=None):
        specs = [
            {"type": "max_group_size", "bound": 8},
            {"type": "max_groups", "bound": 4},
            {"type": "cannot_link", "class_a": "rcp", "class_b": "as"},
        ]
        if shuffle_seed is not None:
            random.Random(shuffle_seed).shuffle(specs)
        return AbstractionJob(
            log=LogRef.builtin("running_example"),
            constraints=ConstraintSet([parse_constraint(s) for s in specs]),
            config=config or GeccoConfig(),
        )

    def test_constraint_order_irrelevant(self):
        assert self._job(1).fingerprint() == self._job(2).fingerprint()

    def test_partial_config_equals_full_default(self):
        partial = config_from_dict({"strategy": "dfg"})
        assert (
            self._job(config=partial).fingerprint()
            == self._job(config=GeccoConfig()).fingerprint()
        )

    def test_config_changes_fingerprint(self):
        a = self._job(config=GeccoConfig(beam_width=3)).fingerprint()
        b = self._job(config=GeccoConfig(beam_width=4)).fingerprint()
        assert a.log == b.log and a.constraints == b.constraints
        assert a.config != b.config and a.full != b.full

    def test_log_prefix_shared_across_constraint_sets(self):
        base = self._job(1).fingerprint()
        other = AbstractionJob(
            log=LogRef.builtin("running_example"),
            constraints=ConstraintSet(
                [parse_constraint({"type": "max_group_size", "bound": 2})]
            ),
        ).fingerprint()
        assert base.log == other.log
        assert base.full != other.full
        assert base.artifact_key("repeat", "compiled") == other.artifact_key(
            "repeat", "compiled"
        )

    def test_stable_across_processes(self):
        """The content address survives a fresh interpreter (new hash seed)."""
        script = (
            "from repro.service import AbstractionJob, LogRef\n"
            "from repro.constraints.parser import parse_constraints\n"
            "from repro.core.gecco import GeccoConfig\n"
            "job = AbstractionJob(log=LogRef.builtin('running_example'),\n"
            "    constraints=parse_constraints([\n"
            "        {'type': 'max_groups', 'bound': 4},\n"
            "        {'type': 'max_group_size', 'bound': 8},\n"
            "        {'type': 'cannot_link', 'class_a': 'rcp', 'class_b': 'as'},\n"
            "    ]), config=GeccoConfig())\n"
            "print(job.fingerprint().full)\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = set()
        for seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": src, "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            outputs.add(proc.stdout.strip())
        assert outputs == {self._job().fingerprint().full}


class TestLogRef:
    def test_unknown_builtin_rejected(self):
        with pytest.raises(ReproError):
            LogRef.builtin("no_such_log")

    def test_from_spec_distinguishes_kinds(self, tmp_path):
        assert LogRef.from_spec("loan:40").kind == "builtin"
        assert LogRef.from_spec(str(tmp_path / "x.xes")).kind == "path"
        with pytest.raises(ReproError):
            LogRef.from_spec("mystery")

    def test_path_digest_matches_inline(self, tmp_path, running_log):
        from repro.eventlog import xes

        target = tmp_path / "log.xes"
        xes.dump(running_log, target)
        assert LogRef.path(str(target)).digest() == LogRef.inline(running_log).digest()

    def test_config_dict_round_trip(self):
        config = GeccoConfig(strategy="exhaustive", beam_width="auto", solver="bnb")
        assert config_from_dict(config_to_dict(config)) == config

    def test_config_unknown_field_rejected(self):
        with pytest.raises(ReproError):
            config_from_dict({"no_such_option": 1})
