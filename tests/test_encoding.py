"""Unit tests for the integer-encoded engine (``repro.core.encoding``)."""

import pytest

from repro.constraints import ConstraintSet
from repro.core.dfg_candidates import dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.encoding import (
    HAVE_NUMPY,
    CompiledDfgOps,
    CompiledDistanceFunction,
    CompiledInstanceIndex,
    CompiledLog,
)
from repro.core.instances import InstanceIndex, instances_in_log
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import EventLog, Trace, log_from_variants
from repro.exceptions import EventLogError, GroupingError

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


@pytest.fixture(scope="module")
def small_log():
    return log_from_variants(
        [
            ["a", "b", "c", "d"],
            ["a", "b", "a", "c"],
            ["b", "d"],
            ["c"],
        ]
    )


class TestCompiledLog:
    def test_class_interning_is_sorted_and_dense(self, small_log):
        compiled = CompiledLog(small_log)
        assert compiled.classes == ["a", "b", "c", "d"]
        assert compiled.class_to_id == {"a": 0, "b": 1, "c": 2, "d": 3}
        assert compiled.num_traces == 4
        assert compiled.all_ids.tolist() == [0, 1, 2, 3, 0, 1, 0, 2, 1, 3, 2]

    def test_mask_round_trip(self, small_log):
        compiled = CompiledLog(small_log)
        group = frozenset({"a", "c"})
        mask = compiled.mask_of(group)
        assert mask == (1 << 0) | (1 << 2)
        assert compiled.group_of(mask) == group

    def test_mask_ignores_foreign_classes(self, small_log):
        compiled = CompiledLog(small_log)
        assert compiled.mask_of({"a", "zz"}) == compiled.mask_of({"a"})

    def test_occurs_matches_reference(self, small_log):
        compiled = CompiledLog(small_log)
        import itertools

        for r in (1, 2, 3):
            for combo in itertools.combinations("abcd", r):
                assert compiled.occurs(combo) == small_log.occurs(combo), combo
        assert not compiled.occurs([])
        assert not compiled.occurs(["zz"])
        assert not compiled.occurs(["a", "zz"])

    def test_extend_cooccurring_is_posting_intersection(self, small_log):
        compiled = CompiledLog(small_log)
        mask_a = compiled.mask_of({"a"})
        bits = compiled.extend_cooccurring(mask_a, compiled.class_bit("b"))
        # Traces 0 and 1 contain both a and b.
        assert bits == (1 << 0) | (1 << 1)
        # {a, b, d}: only trace 0.
        bits = compiled.extend_cooccurring(
            compiled.mask_of({"a", "b"}), compiled.class_bit("d")
        )
        assert bits == 1 << 0

    def test_instances_reject_unknown_policy(self, small_log):
        compiled = CompiledLog(small_log)
        with pytest.raises(EventLogError):
            compiled.instances({"a"}, policy="bogus")

    def test_repeat_split_matches_paper_example(self, running_log):
        """inst(σ4, {rcp, ckc, ckt}) = {⟨rcp, ckc⟩, ⟨rcp, ckt⟩}."""
        compiled = CompiledLog(running_log)
        group = frozenset({"rcp", "ckc", "ckt"})
        pairs, distinct = compiled.instances(group, policy="repeat")
        assert pairs == instances_in_log(running_log, group, policy="repeat")
        assert distinct == [len(p) for _, p in pairs]

    def test_empty_log(self):
        log = EventLog([Trace([])])
        compiled = CompiledLog(log)
        pairs, distinct = compiled.instances({"a"})
        assert pairs == [] and distinct == []
        assert not compiled.occurs({"a"})


class TestCompiledInstanceIndex:
    def test_is_drop_in_for_instance_index(self, running_log):
        reference = InstanceIndex(running_log)
        compiled = CompiledInstanceIndex(running_log)
        group = frozenset({"rcp", "ckc", "ckt"})
        assert compiled.positions(group) == reference.positions(group)
        assert compiled.count(group) == reference.count(group)
        ref_events = reference.events(group)
        com_events = compiled.events(group)
        assert [
            [e.event_class for e in inst] for inst in com_events
        ] == [[e.event_class for e in inst] for inst in ref_events]
        assert compiled.cache_size() == 1

    def test_rejects_foreign_compiled_log(self, running_log, loan_log):
        with pytest.raises(GroupingError):
            CompiledInstanceIndex(running_log, CompiledLog(loan_log))

    def test_prime_fills_cache(self, running_log):
        index = CompiledInstanceIndex(running_log)
        groups = [frozenset({"rcp"}), frozenset({"ckc", "ckt"})]
        index.prime(groups)
        assert index.cache_size() == 2
        for group in groups:
            assert index.positions(group) == instances_in_log(
                running_log, group
            )


class TestCompiledDistance:
    def test_requires_compiled_index(self, running_log):
        with pytest.raises(GroupingError):
            CompiledDistanceFunction(running_log, InstanceIndex(running_log))

    def test_fig7_value(self, running_log):
        from repro.datasets import PAPER_OPTIMAL_GROUPS

        reference = DistanceFunction(running_log)
        compiled = CompiledDistanceFunction(running_log)
        assert compiled.grouping_distance(PAPER_OPTIMAL_GROUPS) == pytest.approx(
            3.0833333, abs=1e-6
        )
        assert compiled.grouping_distance(
            PAPER_OPTIMAL_GROUPS
        ) == reference.grouping_distance(PAPER_OPTIMAL_GROUPS)

    def test_empty_group_raises(self, running_log):
        with pytest.raises(GroupingError):
            CompiledDistanceFunction(running_log).group_distance(frozenset())

    def test_group_without_instances_scores_unary_penalty(self):
        log = log_from_variants([["a"], ["b"]])
        compiled = CompiledDistanceFunction(log)
        assert compiled.group_distance({"a", "b"}) == DistanceFunction(
            log
        ).group_distance({"a", "b"})


class TestCompiledDfgOps:
    def test_matches_graph_neighborhoods(self, running_log):
        graph = compute_dfg(running_log)
        ops = CompiledDfgOps(CompiledLog(running_log), graph)
        import itertools

        classes = sorted(running_log.classes)
        groups = [
            frozenset(c)
            for r in (1, 2)
            for c in itertools.combinations(classes, r)
        ]
        for group in groups:
            assert ops.pre(group) == graph.pre(group), group
            assert ops.post(group) == graph.post(group), group
        for a, b in itertools.combinations(groups[: len(classes)], 2):
            assert ops.exclusive(a, b) == graph.exclusive(a, b), (a, b)

    def test_equal_pre_post_matches_graph(self, running_log):
        graph = compute_dfg(running_log)
        ops = CompiledDfgOps(CompiledLog(running_log), graph)
        candidates = dfg_candidates(running_log, ConstraintSet([])).groups
        for group in candidates:
            assert ops.equal_pre_post(group, candidates) == graph.equal_pre_post(
                group, candidates
            ), group


class TestEventLogOccursCache:
    def test_single_class(self, small_log):
        assert small_log.occurs(["a"])
        assert small_log.occurs(frozenset({"c"}))
        assert not small_log.occurs(["nope"])

    def test_empty_intersection_is_cached_and_false(self):
        log = log_from_variants([["a", "b"], ["c", "d"]])
        assert not log.occurs(["a", "c"])
        # The empty result is memoized, not recomputed.
        assert log._group_trace_sets[frozenset({"a", "c"})] == frozenset()
        assert log.traces_containing(["a", "c"]) == []

    def test_child_reuses_cached_parent_intersection(self):
        log = log_from_variants([["a", "b", "c"], ["a", "b"], ["c"]])
        assert log.occurs(["a", "b"])
        assert log.occurs(["a", "b", "c"])
        assert log._group_trace_sets[frozenset({"a", "b", "c"})] == frozenset({0})
        assert log.traces_containing(["a", "b"]) == [0, 1]

    def test_append_invalidates_cache(self):
        from repro.eventlog.events import Event

        log = log_from_variants([["a", "b"]])
        assert not log.occurs(["a", "c"])
        log.append(Trace([Event("a"), Event("c")]))
        assert log.occurs(["a", "c"])
        assert log.traces_containing(["a", "c"]) == [1]

    def test_empty_group_never_occurs(self, small_log):
        assert not small_log.occurs([])
        assert small_log.traces_containing([]) == []
