"""Unit tests for DFG-based candidate computation (Algorithm 2)."""

from repro.constraints import (
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroupSize,
    MinGroupSize,
)
from repro.core.candidates import exhaustive_candidates
from repro.core.dfg_candidates import default_beam_width, dfg_candidates
from repro.eventlog.events import ROLE_KEY, log_from_variants


class TestBasics:
    def test_paths_follow_dfg_edges(self):
        log = log_from_variants([["a", "b", "c"]])
        result = dfg_candidates(log, ConstraintSet([]))
        assert frozenset({"a", "b"}) in result.groups
        assert frozenset({"b", "c"}) in result.groups
        assert frozenset({"a", "b", "c"}) in result.groups
        # a-c are not DFG-adjacent: reachable only via the full path.
        assert frozenset({"a", "c"}) not in result.groups

    def test_running_example_iteration_paths(self, running_log, role_constraints):
        """The Fig. 5 narrative: adjacent clerk pairs found, far pairs not."""
        result = dfg_candidates(running_log, role_constraints)
        assert frozenset({"prio", "inf"}) in result.groups
        assert frozenset({"prio", "arv"}) in result.groups
        assert frozenset({"inf", "arv"}) in result.groups
        # {rcp, arv} is far apart in the DFG: never checked.
        assert frozenset({"rcp", "arv"}) not in result.groups
        # {acc, inf} is adjacent but violates the role constraint.
        assert frozenset({"acc", "inf"}) not in result.groups

    def test_candidates_subset_of_exhaustive(self, running_log, role_constraints):
        dfg_result = dfg_candidates(running_log, role_constraints)
        exhaustive_result = exhaustive_candidates(running_log, role_constraints)
        assert dfg_result.groups <= exhaustive_result.groups

    def test_all_singletons_present(self, running_log):
        result = dfg_candidates(running_log, ConstraintSet([]))
        for cls in running_log.classes:
            assert frozenset({cls}) in result.groups


class TestBeam:
    def test_default_beam_width(self, running_log):
        assert default_beam_width(running_log) == 5 * len(running_log.classes)

    def test_beam_restricts_candidates(self, running_log, role_constraints):
        unlimited = dfg_candidates(running_log, role_constraints, beam_width=None)
        narrow = dfg_candidates(running_log, role_constraints, beam_width=2)
        assert narrow.groups <= unlimited.groups
        assert len(narrow.groups) < len(unlimited.groups)

    def test_beam_prune_counter(self, running_log, role_constraints):
        narrow = dfg_candidates(running_log, role_constraints, beam_width=2)
        assert narrow.stats.paths_beam_pruned > 0

    def test_wide_beam_equals_unlimited(self, running_log, role_constraints):
        unlimited = dfg_candidates(running_log, role_constraints, beam_width=None)
        wide = dfg_candidates(running_log, role_constraints, beam_width=10_000)
        assert wide.groups == unlimited.groups


class TestModes:
    def test_anti_monotonic_stops_expanding_violators(self, running_log):
        constraints = ConstraintSet([MaxGroupSize(2)])
        result = dfg_candidates(running_log, constraints)
        assert all(len(group) <= 2 for group in result.groups)

    def test_monotonic_expands_violators(self, running_log):
        constraints = ConstraintSet([MinGroupSize(3)])
        result = dfg_candidates(running_log, constraints)
        assert result.groups  # supergroups of failing singletons were found
        assert all(len(group) >= 3 for group in result.groups)

    def test_monotonic_subset_shortcut(self, running_log):
        constraints = ConstraintSet([MinGroupSize(2)])
        result = dfg_candidates(running_log, constraints)
        assert result.stats.subset_prunes > 0


class TestTimeout:
    def test_timeout_returns_partial(self, running_log, role_constraints):
        result = dfg_candidates(running_log, role_constraints, timeout=0.0)
        assert result.stats.timed_out
