"""Differential + unit suite for the decomposed Step-2 pipeline.

The contract under test: ``GeccoConfig(selection="decomposed")`` is
byte-identical to ``selection="monolithic"`` on every workload, across
both exact backends, with and without Eq. 5 cardinality bounds, and on
infeasible programs.  Plus unit coverage of the subsystem's layers:
decomposer, presolver (with certificate verification), portfolio,
coordination DP, caching, and parallel dispatch.
"""

import pytest

from repro.constraints import (
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroups,
    MaxGroupSize,
    MinGroups,
)
from repro.core.distance import DistanceFunction
from repro.core.gecco import Gecco, GeccoConfig
from repro.core.selection import select_optimal_grouping
from repro.eventlog.events import ROLE_KEY, Event, EventLog, Trace
from repro.exceptions import ConstraintError, SolverError
from repro.mip.branch_and_bound import SetPartitionSolver
from repro.mip.result import SolverStatus
from repro.selection2 import (
    Component,
    decompose,
    greedy_incumbent,
    merge_fronts,
    presolve,
    select_decomposed,
    solve_component,
    verify_certificate,
)
from repro.selection2.pipeline import component_cache_key
from repro.service import ArtifactCache, LogRef, AbstractionJob, SequentialExecutor
from repro.service.serialization import result_signature


def _constraint_grid():
    return [
        ("role", ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])),
        ("BL1", ConstraintSet([MaxGroupSize(8), MaxGroupSize(5)])),
        ("Gr", ConstraintSet([MaxGroupSize(8), MaxGroups(3)])),
        ("min6", ConstraintSet([MaxGroupSize(8), MinGroups(6)])),
        ("infeasible", ConstraintSet([MaxGroupSize(8), MaxGroups(1)])),
    ]


class TestDifferential:
    """Decomposed ≡ monolithic, byte for byte, per backend."""

    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    @pytest.mark.parametrize(
        "set_name", [name for name, _ in _constraint_grid()]
    )
    def test_running_example_all_sets(self, running_log, set_name, backend):
        constraints = dict(_constraint_grid())[set_name]
        mono = Gecco(
            constraints, GeccoConfig(selection="monolithic", solver=backend)
        ).abstract(running_log)
        dec = Gecco(
            constraints, GeccoConfig(selection="decomposed", solver=backend)
        ).abstract(running_log)
        assert result_signature(dec) == result_signature(mono)

    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    @pytest.mark.parametrize("set_name", ["role", "Gr"])
    def test_loan_log(self, loan_log, set_name, backend):
        constraints = dict(_constraint_grid())[set_name]
        mono = Gecco(
            constraints, GeccoConfig(selection="monolithic", solver=backend)
        ).abstract(loan_log)
        dec = Gecco(
            constraints, GeccoConfig(selection="decomposed", solver=backend)
        ).abstract(loan_log)
        assert result_signature(dec) == result_signature(mono)
        assert dec.selection_stats.mode == "decomposed"

    def test_synthetic_log(self, small_synthetic_log):
        constraints = ConstraintSet([MaxGroupSize(5)])
        mono = Gecco(
            constraints, GeccoConfig(selection="monolithic")
        ).abstract(small_synthetic_log)
        dec = Gecco(
            constraints, GeccoConfig(selection="decomposed")
        ).abstract(small_synthetic_log)
        assert result_signature(dec) == result_signature(mono)

    def test_auto_portfolio_matches_exact_backends(self, running_log):
        constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
        mono = Gecco(
            constraints, GeccoConfig(selection="monolithic", solver="scipy")
        ).abstract(running_log)
        auto = Gecco(
            constraints, GeccoConfig(selection="decomposed", solver="auto")
        ).abstract(running_log)
        assert set(auto.grouping.groups) == set(mono.grouping.groups)
        assert auto.distance == pytest.approx(mono.distance)
        assert auto.selection_stats.backends_used

    def test_stats_recorded_on_result(self, running_log):
        constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
        result = Gecco(constraints, GeccoConfig()).abstract(running_log)
        stats = result.selection_stats
        assert stats.mode == "decomposed"
        assert stats.num_components >= 1
        assert stats.solves + stats.cache_hits >= stats.num_components
        mono = Gecco(
            constraints, GeccoConfig(selection="monolithic", solver="bnb")
        ).abstract(running_log)
        assert mono.selection_stats.mode == "monolithic"
        assert mono.selection_stats.backend == "bnb"
        assert mono.selection_stats.nodes > 0


def _two_cluster_log() -> EventLog:
    """Two class clusters that never co-occur (a,b) / (c,d,e)."""
    traces = [
        Trace([Event(c, {ROLE_KEY: "x"}) for c in ("a", "b")])
        for _ in range(4)
    ] + [
        Trace([Event(c, {ROLE_KEY: "y"}) for c in ("c", "d", "e")])
        for _ in range(4)
    ]
    return EventLog(traces)


def _cluster_candidates():
    return {
        frozenset({"a"}),
        frozenset({"b"}),
        frozenset({"a", "b"}),
        frozenset({"c"}),
        frozenset({"d"}),
        frozenset({"e"}),
        frozenset({"c", "d"}),
        frozenset({"c", "d", "e"}),
    }


class TestMultiComponentBounds:
    """Eq. 5 coordination across genuinely independent components."""

    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    @pytest.mark.parametrize(
        "min_groups,max_groups",
        [(None, None), (None, 2), (None, 3), (4, None), (2, 4), (5, 5), (None, 1)],
    )
    def test_matches_monolithic(self, backend, min_groups, max_groups):
        log = _two_cluster_log()
        candidates = _cluster_candidates()
        distance = DistanceFunction(log)
        mono = select_optimal_grouping(
            log, candidates, distance,
            min_groups=min_groups, max_groups=max_groups, backend=backend,
        )
        dec = select_decomposed(
            log, candidates, distance,
            min_groups=min_groups, max_groups=max_groups, backend=backend,
        )
        assert dec.status == mono.status
        assert dec.feasible == mono.feasible
        if mono.feasible:
            assert set(dec.grouping.groups) == set(mono.grouping.groups)
            assert dec.objective == mono.objective  # bitwise, same sum order
            assert dec.stats.num_components == 2

    def test_missing_coverage_is_infeasible(self):
        log = _two_cluster_log()
        candidates = {frozenset({"a"}), frozenset({"b"})}  # c,d,e uncovered
        distance = DistanceFunction(log)
        result = select_decomposed(log, candidates, distance)
        assert not result.feasible
        assert result.status is SolverStatus.INFEASIBLE
        assert "without covering candidate" in result.solver_message

    def test_unknown_backend_rejected(self):
        log = _two_cluster_log()
        distance = DistanceFunction(log)
        with pytest.raises(SolverError):
            select_decomposed(log, _cluster_candidates(), distance, backend="gurobi")


class _StubDistance:
    """A distance function with fully controlled group costs."""

    def __init__(self, costs):
        self._costs = {frozenset(group): cost for group, cost in costs.items()}

    def group_distance(self, group):
        return self._costs[frozenset(group)]


class TestCanonicalTieBreak:
    """Equal-cost optima resolve to one deterministic (lex-min) winner."""

    def _tied_program(self):
        log = EventLog([Trace([Event(c) for c in "abcd"]) for _ in range(2)])
        candidates = {
            frozenset({"a", "b"}),
            frozenset({"c", "d"}),
            frozenset({"a", "c"}),
            frozenset({"b", "d"}),
        }
        # Both perfect matchings cost exactly 2.0 — a genuine tie.
        distance = _StubDistance({group: 1.0 for group in candidates})
        return log, candidates, distance

    def test_lexmin_search_prefers_earliest_candidates(self):
        from repro.mip.branch_and_bound import lexmin_optimal_selection

        candidates = [
            frozenset({"a", "b"}),  # 0  (sorted-group order)
            frozenset({"a", "c"}),  # 1
            frozenset({"b", "d"}),  # 2
            frozenset({"c", "d"}),  # 3
        ]
        chosen = lexmin_optimal_selection(
            "abcd", candidates, [1.0] * 4, target=2.0
        )
        assert chosen == [0, 3]

    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    def test_all_paths_agree_on_tie(self, backend):
        log, candidates, distance = self._tied_program()
        mono = select_optimal_grouping(log, candidates, distance, backend=backend)
        dec = select_decomposed(log, candidates, distance, backend=backend)
        expected = {frozenset({"a", "b"}), frozenset({"c", "d"})}  # lex-min
        assert set(mono.grouping.groups) == expected
        assert set(dec.grouping.groups) == expected
        assert mono.objective == dec.objective == 2.0

    def test_merge_fronts_breaks_cost_ties_lexicographically(self):
        def solution(classes, cost):
            return solve_component(
                Component(
                    tuple(classes),
                    tuple(frozenset({c}) for c in classes),
                    tuple([cost / len(classes)] * len(classes)),
                ),
                backend="bnb",
            )

        fronts = [
            {1: solution("a", 1.0), 2: solution("pq", 2.0)},
            {1: solution("z", 2.0), 2: solution("xy", 1.0)},
        ]
        ranks = {"a": (0,), "pq": (4, 5), "z": (9,), "xy": (6, 7)}

        def order_key(sol):
            return ranks["".join(cls for group in sol.groups for cls in group)]

        # Totals of 3 tie at cost 3.0 two ways; (a + xy) = positions
        # (0, 6, 7) beats (pq + z) = (4, 5, 9).
        chosen = merge_fronts(fronts, 3, 3, order_key=order_key)
        assert chosen == [1, 2]


class TestDecomposer:
    def test_splits_independent_clusters(self):
        candidates = sorted(_cluster_candidates(), key=sorted)
        costs = [float(len(group)) for group in candidates]
        components, uncovered = decompose("abcde", candidates, costs)
        assert not uncovered
        assert [component.classes for component in components] == [
            ("a", "b"),
            ("c", "d", "e"),
        ]
        assert components[0].num_candidates == 3
        assert components[1].num_candidates == 5

    def test_reports_uncovered_classes(self):
        components, uncovered = decompose(
            ["a", "b", "z"], [frozenset({"a", "b"})], [1.0]
        )
        assert uncovered == ["z"]
        assert len(components) == 1

    def test_digest_is_content_addressed(self):
        component = Component(("a", "b"), (frozenset({"a", "b"}),), (1.5,))
        twin = Component(("a", "b"), (frozenset({"a", "b"}),), (1.5,))
        other = Component(("a", "b"), (frozenset({"a", "b"}),), (2.5,))
        assert component.digest() == twin.digest()
        assert component.digest() != other.digest()
        assert component_cache_key(component, None, 2, "bnb") != component_cache_key(
            component, None, 3, "bnb"
        )


class TestPresolve:
    def test_duplicate_merge_keeps_cheapest(self):
        candidates = [frozenset({"a"}), frozenset({"a"}), frozenset({"b"})]
        costs = [2.0, 1.0, 1.0]
        outcome = presolve(["a", "b"], candidates, costs)
        assert outcome.counts()["duplicates_merged"] == 1
        # The deduped singletons become sole coverers and are fixed —
        # with the *cheap* copy's cost.
        assert outcome.fixed == [frozenset({"a"}), frozenset({"b"})]
        assert outcome.fixed_costs == [1.0, 1.0]
        assert verify_certificate(outcome, ["a", "b"], candidates, costs)

    def test_forced_fixing_cascades(self):
        # 'a' is only covered by {a,b}; fixing it removes {b,c}, which
        # forces {c} next.
        candidates = [
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"c"}),
        ]
        costs = [1.0, 1.0, 3.0]
        outcome = presolve(["a", "b", "c"], candidates, costs)
        assert outcome.fixed == [frozenset({"a", "b"}), frozenset({"c"})]
        assert outcome.classes == ()
        assert outcome.counts()["forced_fixed"] == 2
        assert verify_certificate(outcome, ["a", "b", "c"], candidates, costs)

    def test_forced_fixing_detects_infeasibility(self):
        # Fixing {a,b} (sole coverer of 'a') removes {b,c}, the sole
        # coverer of 'c'.
        candidates = [frozenset({"a", "b"}), frozenset({"b", "c"})]
        outcome = presolve(["a", "b", "c"], candidates, [1.0, 1.0])
        assert outcome.infeasible_reason is not None
        assert "c" in outcome.infeasible_reason

    def test_domination_is_strict(self):
        singles = [frozenset({"a"}), frozenset({"b"})]
        pair = frozenset({"a", "b"})
        # Strictly pricier pair: eliminated.
        outcome = presolve(["a", "b"], singles + [pair], [1.0, 1.0, 3.0])
        assert pair not in outcome.candidates
        assert outcome.counts()["dominated_removed"] == 1
        assert verify_certificate(
            outcome, ["a", "b"], singles + [pair], [1.0, 1.0, 3.0]
        )
        # Equal-cost pair: kept (it may be part of an optimal tie).
        outcome = presolve(["a", "b"], singles + [pair], [1.0, 1.0, 2.0])
        assert pair in outcome.candidates

    def test_domination_disabled_under_max_groups(self):
        singles = [frozenset({"a"}), frozenset({"b"})]
        pair = frozenset({"a", "b"})
        outcome = presolve(
            ["a", "b"], singles + [pair], [1.0, 1.0, 9.0], allow_domination=False
        )
        assert pair in outcome.candidates

    def test_tampered_certificate_fails(self):
        singles = [frozenset({"a"}), frozenset({"b"})]
        pair = frozenset({"a", "b"})
        costs = [1.0, 1.0, 3.0]
        outcome = presolve(["a", "b"], singles + [pair], costs)
        with pytest.raises(AssertionError):
            # Claim the pair cost less than its singleton split.
            verify_certificate(outcome, ["a", "b"], singles + [pair], [1.0, 1.0, 1.0])


class TestPortfolioAndCoordination:
    def _component(self):
        return Component(
            classes=("a", "b", "c"),
            candidates=(
                frozenset({"a"}),
                frozenset({"a", "b"}),
                frozenset({"b"}),
                frozenset({"c"}),
            ),
            costs=(1.0, 1.5, 1.0, 0.5),
        )

    def test_backends_agree_on_component(self):
        component = self._component()
        for min_count, max_count in ((None, None), (2, None), (None, 2)):
            scipy_sol = solve_component(
                component, backend="scipy", min_count=min_count, max_count=max_count
            )
            bnb_sol = solve_component(
                component, backend="bnb", min_count=min_count, max_count=max_count
            )
            assert scipy_sol.objective == pytest.approx(bnb_sol.objective)
            assert scipy_sol.groups == bnb_sol.groups

    def test_greedy_incumbent_is_feasible_warm_start(self):
        component = self._component()
        incumbent = greedy_incumbent(component)
        assert incumbent is not None
        positions, cost = incumbent
        covered = set()
        for position in positions:
            group = component.candidates[position]
            assert not (covered & group)
            covered |= group
        assert covered == set(component.classes)
        # Warm-started search returns the same optimum as cold.
        warm = SetPartitionSolver(
            universe=component.classes,
            candidates=component.candidates,
            costs=component.costs,
            incumbent=incumbent,
        ).solve()
        cold = SetPartitionSolver(
            universe=component.classes,
            candidates=component.candidates,
            costs=component.costs,
        ).solve()
        assert warm.objective == pytest.approx(cold.objective)

    def test_invalid_incumbent_rejected(self):
        component = self._component()
        with pytest.raises(SolverError):
            SetPartitionSolver(
                universe=component.classes,
                candidates=component.candidates,
                costs=component.costs,
                incumbent=([0, 1], 2.5),  # overlapping groups
            )

    def test_merge_fronts_respects_bounds(self):
        def sol(objective):
            return solve_component(
                Component(("z",), (frozenset({"z"}),), (objective,)), backend="bnb"
            )

        fronts = [
            {1: sol(5.0), 2: sol(3.0)},
            {1: sol(4.0), 3: sol(1.0)},
        ]
        # Unbounded: cheapest combination (2 + 3 groups, cost 4).
        assert merge_fronts(fronts, None, None) == [2, 3]
        # Max 4 total: forced away from the global optimum.
        assert merge_fronts(fronts, None, 4) == [1, 3]
        # Min 5 total: only (2, 3) qualifies.
        assert merge_fronts(fronts, 5, None) == [2, 3]
        # Impossible window.
        assert merge_fronts(fronts, None, 1) is None

    def test_time_limited_bnb_raises(self):
        import itertools

        classes = tuple(f"c{i}" for i in range(16))
        pairs = [
            frozenset(pair) for pair in itertools.combinations(classes, 2)
        ]
        solver = SetPartitionSolver(
            universe=classes,
            candidates=pairs,
            costs=[1.0 + (hash(min(p)) % 7) / 10 for p in pairs],
            time_limit=1e-4,
        )
        with pytest.raises(SolverError, match="time limit"):
            solver.solve()


class TestSelectionCacheAndParallel:
    def test_selection_tier_reused_across_bound_sweep(self):
        log = _two_cluster_log()
        candidates = _cluster_candidates()
        distance = DistanceFunction(log)
        cache = ArtifactCache()
        first = select_decomposed(
            log, candidates, distance, max_groups=3, cache=cache
        )
        again = select_decomposed(
            log, candidates, distance, max_groups=3, cache=cache
        )
        assert first.feasible and again.feasible
        assert again.stats.cache_hits > 0
        assert again.stats.solves == 0
        # A different bound still reuses the per-count cells it shares.
        widened = select_decomposed(
            log, candidates, distance, max_groups=4, cache=cache
        )
        assert widened.stats.cache_hits > 0

    def test_timed_out_solves_are_not_cached(self, monkeypatch):
        """A timeout is not a proof — it must never poison the tier."""
        from repro.mip.result import SolverStatus
        from repro.selection2 import pipeline, portfolio

        component = Component(("a",), (frozenset({"a"}),), (1.0,))
        timed_out = portfolio.ComponentSolution(
            status=SolverStatus.ERROR.value, backend="scipy", message="time limit"
        )
        cache = ArtifactCache()
        monkeypatch.setattr(
            portfolio, "solve_component", lambda *args, **kwargs: timed_out
        )
        solution, hit = pipeline.solve_component_task(
            component, None, None, "scipy", 0.001, cache=cache
        )
        assert not hit and not solution.is_optimal
        assert cache.stats.selection.stores == 0
        monkeypatch.undo()
        # The real solve afterwards caches its optimality proof.
        solution, _ = pipeline.solve_component_task(
            component, None, None, "scipy", None, cache=cache
        )
        assert solution.is_optimal
        assert cache.stats.selection.stores == 1

    def test_executor_dispatch_matches_inline(self):
        log = _two_cluster_log()
        candidates = _cluster_candidates()
        distance = DistanceFunction(log)
        inline = select_decomposed(log, candidates, distance)
        routed = select_decomposed(
            log, candidates, distance, executor=SequentialExecutor()
        )
        assert set(routed.grouping.groups) == set(inline.grouping.groups)
        assert routed.objective == inline.objective

    def test_run_job_shares_selection_tier_across_jobs(self, running_log):
        from repro.service import run_job

        cache = ArtifactCache()
        constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
        jobs = [
            AbstractionJob(
                log=LogRef.builtin("running_example"),
                constraints=ConstraintSet(
                    [MaxDistinctClassAttribute(ROLE_KEY, 1), MaxGroups(bound)]
                ),
            )
            for bound in (5, 6)
        ]
        run_job(jobs[0], cache)
        before = cache.stats.selection.hits
        run_job(jobs[1], cache)
        assert cache.stats.selection.hits > before
        del constraints

    def test_config_validation(self):
        with pytest.raises(ConstraintError):
            GeccoConfig(selection="fractal")
        with pytest.raises(ConstraintError):
            GeccoConfig(selection_workers=0)
        assert GeccoConfig(solver="auto").solver == "auto"
