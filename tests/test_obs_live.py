"""The live observability plane: spans, streaming ingestion, top, recommend.

Four properties matter and are tested here:

1. **Exact lineage** — every executor tier mints a span at submit and
   the ids survive pickling through broker queues and pool pipes, so
   the doctor nests a claimed job's worker-side events under its
   submit span (no timestamp heuristics).
2. **Incremental ingestion** — :class:`TraceFollower` never re-reads
   bytes it has seen: torn lines are carried, truncation and
   size-based rotation are survived, cursors resume across followers.
3. **Honest degradation** — traces from the pre-span writer format
   still parse; the spans section is empty and everything else falls
   back to timestamp ordering.
4. **Evidence-backed advice** — ``repro doctor --recommend`` fires
   exactly past its documented thresholds and stays silent on a
   healthy trace.
"""

import gzip
import io
import json
import threading

import pytest

from repro.constraints import ConstraintSet, MaxGroupSize
from repro.obs import (
    LiveAggregator,
    TOP_SCHEMA,
    TraceFollower,
    TraceWriter,
    analyze_trace,
    merge_traces,
    read_trace,
    recommend,
    render_top,
    trace_segments,
)
from repro.obs.doctor import RECOMMEND_THRESHOLDS, main_doctor, render_report
from repro.obs.live import main_top
from repro.obs.metrics import Histogram
from repro.service import (
    AbstractionJob,
    LogRef,
    PoolExecutor,
    SequentialExecutor,
    run_batch,
    serve_loop,
)
from repro.service.cache import ArtifactCache


def _job(bound=3, log="loan:15"):
    return AbstractionJob(
        log=LogRef.builtin(log),
        constraints=ConstraintSet([MaxGroupSize(bound)]),
    )


def _write_events(path, events, worker="w1"):
    with TraceWriter(path, worker=worker) as tracer:
        for event in events:
            name = event.pop("event")
            tracer.emit(name, **event)


# ---------------------------------------------------------------------------
# Histogram quantiles (streaming p50/p99 backing `repro top`)
# ---------------------------------------------------------------------------


class TestHistogramQuantile:
    def test_empty_returns_none(self):
        hist = Histogram("h", "", threading.Lock())
        assert hist.quantile(0.5) is None

    def test_bucket_upper_bound_rule(self):
        hist = Histogram("h", "", threading.Lock(), buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 3.0):
            hist.observe(value)
        # ranks: p50 -> 2nd of 3 -> first bucket (two values <= 1.0)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.99) == 4.0

    def test_overflow_reports_last_finite_bound(self):
        hist = Histogram("h", "", threading.Lock(), buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.5) == 2.0


# ---------------------------------------------------------------------------
# TraceWriter rotation + segment-aware readers
# ---------------------------------------------------------------------------


class TestRotation:
    def test_rotates_past_size_and_readers_merge(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path, worker="w1", rotate_mb=0.0005)  # ~512 B
        for index in range(50):
            writer.emit("queued", task_id=f"t{index}", filler="x" * 40)
        writer.close()
        assert writer.rotations >= 1
        rotated = tmp_path / "trace.jsonl.1"
        assert rotated.exists()
        segments = trace_segments(str(path))
        assert str(rotated) in segments and segments[-1] == str(path)
        # One rotated generation is kept, so readers see a bounded,
        # contiguous, correctly ordered tail of the stream ending at
        # the newest event — never an interleaved or duplicated view.
        ids = [e["task_id"] for e in merge_traces([path])]
        assert 0 < len(ids) < 50
        first = int(ids[0][1:])
        assert ids == [f"t{i}" for i in range(first, 50)]

    def test_gz_segments_are_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_events(str(path) + ".plain", [
            {"event": "queued", "task_id": "old"},
        ])
        with open(str(path) + ".plain", "rb") as fh:
            blob = fh.read()
        with gzip.open(str(path) + ".1.gz", "wb") as fh:
            fh.write(blob)
        _write_events(path, [{"event": "queued", "task_id": "new"}])
        events = merge_traces([path])
        assert {e["task_id"] for e in events} == {"old", "new"}

    def test_merge_orders_by_ts_then_writer_then_mono(self, tmp_path):
        # Two writers with interleaved wall timestamps: mono must only
        # break ties within one writer, never order across writers.
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        rows_a = [
            {"ts": 1.0, "mono": 100.0, "event": "queued", "task_id": "a1"},
            {"ts": 3.0, "mono": 101.0, "event": "queued", "task_id": "a2"},
        ]
        rows_b = [
            {"ts": 2.0, "mono": 5.0, "event": "queued", "task_id": "b1"},
            {"ts": 2.0, "mono": 6.0, "event": "queued", "task_id": "b2"},
        ]
        for path, rows in ((a, rows_a), (b, rows_b)):
            with open(path, "w", encoding="utf-8") as fh:
                for row in rows:
                    fh.write(json.dumps(row) + "\n")
        events = merge_traces([a, b])
        assert [e["task_id"] for e in events] == ["a1", "b1", "b2", "a2"]


# ---------------------------------------------------------------------------
# TraceFollower: incremental, torn lines, truncation, rotation, resume
# ---------------------------------------------------------------------------


class TestTraceFollower:
    def test_incremental_poll_returns_only_new_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path, worker="w1")
        writer.emit("queued", task_id="t1")
        follower = TraceFollower([path])
        assert [e["task_id"] for e in follower.poll()] == ["t1"]
        assert follower.poll() == []
        writer.emit("queued", task_id="t2")
        assert [e["task_id"] for e in follower.poll()] == ["t2"]
        writer.close()

    def test_missing_file_then_appearing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        follower = TraceFollower([path])
        assert follower.poll() == []
        _write_events(path, [{"event": "queued", "task_id": "t1"}])
        assert [e["task_id"] for e in follower.poll()] == ["t1"]

    def test_torn_line_is_carried_until_newline(self, tmp_path):
        path = tmp_path / "t.jsonl"
        line = json.dumps({"ts": 1.0, "mono": 1.0, "event": "queued",
                           "task_id": "t1"}) + "\n"
        with open(path, "w") as fh:
            fh.write(line[:10])
            fh.flush()
            follower = TraceFollower([path])
            assert follower.poll() == []
            fh.write(line[10:])
            fh.flush()
        assert [e["task_id"] for e in follower.poll()] == ["t1"]

    def test_truncation_resets_cursor(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_events(path, [{"event": "queued", "task_id": "t1"}])
        follower = TraceFollower([path])
        follower.poll()
        path.write_text("")  # bare truncation, no rotated segment
        assert follower.poll() == []
        _write_events(path, [{"event": "queued", "task_id": "t2"}])
        assert [e["task_id"] for e in follower.poll()] == ["t2"]

    def test_rotation_tail_is_drained_in_order(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path, worker="w1", rotate_mb=0.0005)
        writer.emit("queued", task_id="t0")
        follower = TraceFollower([path])
        follower.poll()
        seen = []
        for index in range(1, 50):
            writer.emit("queued", task_id=f"t{index}", filler="x" * 40)
            seen.extend(e["task_id"] for e in follower.poll())
        writer.close()
        seen.extend(e["task_id"] for e in follower.poll())
        assert writer.rotations >= 1
        assert seen == [f"t{i}" for i in range(1, 50)]  # nothing lost/dup

    def test_cursors_resume_across_followers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path, worker="w1")
        writer.emit("queued", task_id="t1")
        first = TraceFollower([path])
        first.poll()
        writer.emit("queued", task_id="t2")
        writer.close()
        resumed = TraceFollower([path], cursors=first.cursors())
        assert [e["task_id"] for e in resumed.poll()] == ["t2"]


# ---------------------------------------------------------------------------
# Span propagation end-to-end (the doctor's exact nesting)
# ---------------------------------------------------------------------------


class TestSpanPropagation:
    def test_sequential_spans_nest_under_submit(self, tmp_path):
        path = tmp_path / "t.jsonl"
        executor = SequentialExecutor(
            ArtifactCache(), tracer=TraceWriter(path, worker="seq")
        )
        executor.submit(_job(2)).result()
        executor.shutdown()
        report = analyze_trace([str(path)])
        spans = report["spans"]
        assert spans["traced_jobs"] == 1
        assert spans["max_depth"] == 2
        root = spans["trees"][0]
        assert root["event"] == "submitted"
        assert "done" in root["annotations"]
        assert {child["event"] for child in root["children"]} >= {"solve"}

    def test_pool_spans_cross_process(self, tmp_path):
        path = tmp_path / "t.jsonl"
        executor = PoolExecutor(workers=2, trace=str(path))
        handles = [executor.submit(_job(b)) for b in (2, 3)]
        for handle in handles:
            handle.result()
        executor.shutdown()
        events = merge_traces([path])
        by_trace = {}
        for event in events:
            if event.get("trace_id"):
                by_trace.setdefault(event["trace_id"], []).append(event)
        assert len(by_trace) == 2
        for trace_events in by_trace.values():
            submits = [e for e in trace_events if e["event"] == "submitted"]
            assert len(submits) == 1 and submits[0].get("parent_span") is None
            claims = [e for e in trace_events if e["event"] == "claimed"]
            assert claims and all(
                c["parent_span"] == submits[0]["span_id"] for c in claims
            )
        spans = analyze_trace(events)["spans"]
        assert spans["traced_jobs"] == 2
        assert spans["max_depth"] >= 2

    def test_distributed_spans_reach_depth_three(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_batch(
            [_job(2)], workers=1,
            broker=f"fs://{tmp_path}/q", disk_dir=str(tmp_path / "cache"),
            trace=str(path),
        )
        spans = analyze_trace([str(path)])["spans"]
        assert spans["traced_jobs"] == 1
        # submitted -> claimed -> artifact_build/solve
        assert spans["max_depth"] == 3
        root = spans["trees"][0]
        claimed = root["children"][0]
        assert claimed["event"] == "claimed"
        assert {grand["event"] for grand in claimed["children"]} >= {"solve"}

    def test_spans_never_leak_into_manifest_or_fingerprint(self):
        job = _job(2)
        bare = job.fingerprint().full
        job.trace_id, job.span_id = "deadbeef" * 4, "deadbeef" * 2
        assert job.fingerprint().full == bare
        assert "trace_id" not in job.to_dict()


# ---------------------------------------------------------------------------
# LiveAggregator + repro top
# ---------------------------------------------------------------------------


class TestLiveAggregator:
    def test_snapshot_over_real_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_batch([_job(2), _job(3)], workers=1, trace=str(path))
        aggregator = LiveAggregator(window=3600)
        aggregator.feed(TraceFollower([path]).poll())
        snap = aggregator.snapshot()
        assert snap["schema"] == TOP_SCHEMA
        assert snap["spans"]["traces"] == 2
        assert "solve" in snap["stages"]
        assert snap["stages"]["solve"]["p50_s"] is not None
        text = render_top(snap, color=False)
        assert "repro top" in text and "solve" in text

    def test_redelivery_attribution_matches_doctor(self):
        events = [
            {"ts": 1.0, "event": "released", "task_id": "t1"},
            {"ts": 2.0, "event": "claimed", "task_id": "t1", "attempt": 1},
            {"ts": 3.0, "event": "claimed", "task_id": "t2", "attempt": 1},
        ]
        aggregator = LiveAggregator()
        aggregator.feed(events)
        snap = aggregator.snapshot()
        assert snap["taxonomy"]["redeliveries_released"] == 1
        assert snap["taxonomy"]["redeliveries_lease_expired"] == 1
        doctor = analyze_trace(events)["taxonomy"]["redeliveries"]
        assert doctor == {"released": 1, "lease_expired": 1}

    def test_main_top_once_json(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_batch([_job(2)], workers=1, trace=str(path))
        buffer = io.StringIO()
        assert main_top([str(path)], once=True, as_json=True, out=buffer) == 0
        snap = json.loads(buffer.getvalue())
        assert snap["schema"] == TOP_SCHEMA
        assert snap["events"] > 0


# ---------------------------------------------------------------------------
# Doctor: edge cases, legacy traces, recommendations
# ---------------------------------------------------------------------------


class TestDoctorEdgeCases:
    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        report = analyze_trace([str(path)])
        assert report["events"] == 0
        assert report["spans"] == {
            "traced_jobs": 0, "span_events": 0, "traces": 0,
            "max_depth": 0, "trees": [],
        }
        assert recommend(report) == []
        render_report(report)  # must not raise

    def test_worker_exit_only(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_events(path, [{
            "event": "worker_exit",
            "stats": {"worker": "w1", "completed": 0, "failed": 0},
        }])
        report = analyze_trace([str(path)])
        assert report["events"] == 1
        assert report["offenders"]["workers"][0]["worker"] == "w1"
        assert recommend(report) == []

    def test_single_event_span(self):
        events = [{"ts": 1.0, "event": "submitted", "trace_id": "t" * 32,
                   "span_id": "s" * 16}]
        spans = analyze_trace(events)["spans"]
        assert spans == {
            "traced_jobs": 1, "span_events": 1, "traces": 1,
            "max_depth": 1,
            "trees": [{"event": "submitted", "span_id": "s" * 16}],
        }

    def test_legacy_pre_span_trace_degrades_to_timestamps(self, tmp_path):
        # PR 7-format events: no trace_id/span_id/parent_span fields.
        path = tmp_path / "legacy.jsonl"
        rows = [
            {"ts": 1.0, "mono": 1.0, "event": "queued", "task_id": "t1"},
            {"ts": 2.0, "mono": 2.0, "event": "claimed", "task_id": "t1",
             "attempt": 0},
            {"ts": 3.0, "mono": 3.0, "event": "done", "task_id": "t1",
             "seconds": 1.0, "ok": True},
        ]
        with open(path, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")
        report = analyze_trace([str(path)])
        assert report["spans"]["traced_jobs"] == 0
        assert report["spans"]["trees"] == []
        # Timestamp-ordered analyses still work.
        assert report["latency"]["queue_wait"]["count"] == 1
        assert report["latency"]["job_total"]["count"] == 1
        aggregator = LiveAggregator()
        aggregator.feed(TraceFollower([path]).poll())
        snap = aggregator.snapshot()
        assert snap["spans"]["events_with_span"] == 0
        assert snap["stages"]["queue_wait"]["count"] == 1


class TestRecommend:
    def _base(self, **overrides):
        report = analyze_trace([])
        for path, value in overrides.items():
            section, _, key = path.partition(".")
            report[section][key] = value
        return report

    def test_lease_tuning_threshold_boundary(self):
        floor = RECOMMEND_THRESHOLDS["lease_expired_min"]
        below = self._base()
        below["taxonomy"]["redeliveries"] = {
            "lease_expired": floor - 1, "released": 0,
        }
        assert all(r["id"] != "lease_tuning" for r in recommend(below))
        at = self._base()
        at["taxonomy"]["redeliveries"] = {
            "lease_expired": floor, "released": 0,
        }
        recs = recommend(at)
        rec = next(r for r in recs if r["id"] == "lease_tuning")
        assert rec["evidence"]["redeliveries_lease_expired"] == floor
        assert str(floor) in rec["message"]

    def test_lease_tuning_not_fired_when_releases_dominate(self):
        report = self._base()
        report["taxonomy"]["redeliveries"] = {
            "lease_expired": 2, "released": 5,
        }
        assert all(r["id"] != "lease_tuning" for r in recommend(report))

    def test_max_attempts_fires_on_poison_redelivery_mix(self):
        report = self._base()
        report["taxonomy"]["releases"] = 2
        report["taxonomy"]["quarantines"] = {"poison_payload": 1}
        rec = next(
            r for r in recommend(report) if r["id"] == "max_attempts_tuning"
        )
        assert rec["evidence"] == {
            "releases": 2, "quarantines_poison_payload": 1,
        }

    def test_disk_cache_sizing_needs_enough_lookups(self):
        report = self._base()
        floor = RECOMMEND_THRESHOLDS["cache_lookups_min"]
        report["cache"]["hit_rates"] = {"disk_results": 0.1}
        report["cache"]["lookups"] = {"disk_results": floor - 1}
        assert recommend(report) == []
        report["cache"]["lookups"] = {"disk_results": floor}
        recs = recommend(report)
        assert recs[0]["id"] == "disk_cache_sizing:disk_results"
        # Memory tiers are never flagged (they are bounded by design).
        report["cache"]["hit_rates"] = {"results": 0.0}
        report["cache"]["lookups"] = {"results": 1000}
        assert recommend(report) == []

    def test_worker_scaling_on_queue_wait_ratio(self):
        report = self._base()
        report["latency"]["queue_wait"] = {
            "count": RECOMMEND_THRESHOLDS["queue_wait_count_min"],
            "total_s": 5.0, "p50_s": 1.0, "p99_s": 2.0,
        }
        report["latency"]["solve"] = {
            "count": 5, "total_s": 1.0, "p50_s": 0.2, "p99_s": 0.4,
        }
        rec = next(r for r in recommend(report) if r["id"] == "worker_scaling")
        assert rec["evidence"]["queue_wait_p50_s"] == 1.0
        # At exactly the ratio (not past it) the rule stays silent.
        report["latency"]["queue_wait"]["p50_s"] = (
            RECOMMEND_THRESHOLDS["queue_wait_ratio"] * 0.2
        )
        assert all(r["id"] != "worker_scaling" for r in recommend(report))

    def test_shedding_rule_cites_causes(self):
        report = self._base()
        report["taxonomy"]["sheds"] = {"max_load_evicted": 2, "tenant_quota": 1}
        rec = next(
            r for r in recommend(report) if r["id"] == "admission_shedding"
        )
        assert rec["evidence"]["sheds"] == {
            "max_load_evicted": 2, "tenant_quota": 1,
        }

    def test_healthy_real_trace_yields_no_recommendations(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_batch([_job(2), _job(3)], workers=1, trace=str(path))
        report = analyze_trace([str(path)])
        assert recommend(report) == []
        rendered = main_doctor([str(path)], recommend_flag=True)
        assert "trace looks healthy" in rendered

    def test_main_doctor_json_includes_recommendations(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_events(path, [
            {"event": "released", "task_id": "t1"},
            {"event": "quarantined", "task_id": "t1",
             "reason": "deserialize failed"},
        ])
        payload = json.loads(
            main_doctor([str(path)], as_json=True, recommend_flag=True)
        )
        ids = [r["id"] for r in payload["recommendations"]]
        assert "max_attempts_tuning" in ids


# ---------------------------------------------------------------------------
# Metrics observers (serve + worker wiring contract)
# ---------------------------------------------------------------------------


class TestObservers:
    def test_serve_loop_observer_sees_job_responses_only(self):
        executor = SequentialExecutor(ArtifactCache())
        request = json.dumps({
            "log": "loan:15",
            "constraints": [{"type": "max_group_size", "bound": 3}],
        })
        source = io.StringIO(
            json.dumps({"op": "ping"}) + "\n"
            + request + "\n"
            + json.dumps({"op": "shutdown"}) + "\n"
        )
        seen = []
        served = serve_loop(source, io.StringIO(), executor, observer=seen.append)
        executor.shutdown()
        assert served == 3
        assert len(seen) == 3  # every response passes through the hook
        job_rows = [r for r in seen if "fingerprint" in r]
        assert len(job_rows) == 1 and job_rows[0]["ok"]

    def test_serve_loop_observer_errors_are_swallowed(self):
        executor = SequentialExecutor(ArtifactCache())
        source = io.StringIO(json.dumps({"op": "ping"}) + "\n")

        def explode(_response):
            raise RuntimeError("observer bug")

        assert serve_loop(source, io.StringIO(), executor, observer=explode) == 1
        executor.shutdown()

    def test_worker_loop_observer_gets_outcome_and_seconds(self, tmp_path):
        import pickle

        from repro.service.dist.broker import TaskEnvelope, connect_broker
        from repro.service.dist.worker import worker_loop

        broker = connect_broker(f"fs://{tmp_path}/q")
        broker.put(TaskEnvelope(
            task_id="t1", kind="job", payload=pickle.dumps(_job(2)),
        ))
        outcomes = []
        worker_loop(
            broker, cache_dir=str(tmp_path / "cache"),
            max_tasks=1, poll_interval=0.01,
            observer=lambda outcome, seconds: outcomes.append(
                (outcome, seconds)
            ),
        )
        broker.close()
        assert len(outcomes) == 1
        outcome, seconds = outcomes[0]
        assert outcome == "ok" and seconds > 0
