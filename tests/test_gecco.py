"""Unit tests for the Gecco facade (configs, pipeline, infeasibility)."""

import pytest

from repro.constraints import (
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroups,
    MaxGroupSize,
    MinGroups,
    MinInstanceAggregate,
)
from repro.core.gecco import Gecco, GeccoConfig
from repro.datasets import PAPER_OPTIMAL_GROUPS
from repro.eventlog.events import ROLE_KEY
from repro.exceptions import ConstraintError, InfeasibleProblemError


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = GeccoConfig()
        assert config.strategy == "dfg"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"strategy": "quantum"},
            {"instance_policy": "bogus"},
            {"abstraction_strategy": "middle"},
            {"solver": "gurobi"},
            {"beam_width": "wide"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConstraintError):
            GeccoConfig(**kwargs)

    def test_named_configurations(self):
        assert GeccoConfig.exhaustive().strategy == "exhaustive"
        assert GeccoConfig.dfg_unlimited().beam_width is None
        assert GeccoConfig.dfg_adaptive().beam_width == "auto"


class TestPipeline:
    def test_reproduces_paper_grouping(self, running_log, role_constraints):
        result = Gecco(role_constraints, GeccoConfig(strategy="dfg")).abstract(
            running_log
        )
        assert result.feasible
        assert set(result.grouping.groups) == set(PAPER_OPTIMAL_GROUPS)
        assert result.distance == pytest.approx(3.0833333, abs=1e-6)
        assert result.size_reduction == pytest.approx(0.5)

    def test_constraint_list_coerced(self, running_log):
        gecco = Gecco([MaxDistinctClassAttribute(ROLE_KEY, 1)])
        assert isinstance(gecco.constraints, ConstraintSet)
        assert gecco.abstract(running_log).feasible

    def test_exhaustive_no_worse_than_dfg(self, running_log, role_constraints):
        dfg = Gecco(role_constraints, GeccoConfig(strategy="dfg")).abstract(running_log)
        exh = Gecco(role_constraints, GeccoConfig.exhaustive()).abstract(running_log)
        assert exh.feasible and dfg.feasible
        assert exh.distance <= dfg.distance + 1e-9

    def test_grouping_constraints_enforced(self, running_log, role_constraints):
        constraints = ConstraintSet(
            list(role_constraints.constraints) + [MinGroups(5)]
        )
        result = Gecco(constraints).abstract(running_log)
        assert result.feasible
        assert len(result.grouping) >= 5

    def test_timings_recorded(self, running_log, role_constraints):
        result = Gecco(role_constraints).abstract(running_log)
        assert result.timings.total > 0
        assert result.timings.candidates >= 0
        assert result.timings.selection >= 0

    def test_exclusive_merging_toggle(self, running_log, role_constraints):
        with_merge = Gecco(
            role_constraints, GeccoConfig(exclusive_merging=True)
        ).abstract(running_log)
        without = Gecco(
            role_constraints, GeccoConfig(exclusive_merging=False)
        ).abstract(running_log)
        # Without the Alg. 3 pass, {rcp, ckc, ckt} is unreachable.
        assert with_merge.num_candidates > without.num_candidates
        assert without.distance >= with_merge.distance

    def test_bnb_solver_agrees(self, running_log, role_constraints):
        scipy_result = Gecco(role_constraints, GeccoConfig(solver="scipy")).abstract(
            running_log
        )
        bnb_result = Gecco(role_constraints, GeccoConfig(solver="bnb")).abstract(
            running_log
        )
        assert scipy_result.distance == pytest.approx(bnb_result.distance)

    def test_start_complete_strategy(self, running_log, role_constraints):
        result = Gecco(
            role_constraints, GeccoConfig(abstraction_strategy="start_complete")
        ).abstract(running_log)
        classes = {
            event.event_class
            for trace in result.abstracted_log
            for event in trace
        }
        assert any(cls.endswith("_s") for cls in classes)


class TestInfeasibility:
    @pytest.fixture
    def impossible(self):
        # Every instance must total an absurd duration: nothing qualifies,
        # so no candidate covers any class.
        return ConstraintSet([MinInstanceAggregate("duration", "sum", 1e12)])

    def test_returns_original_log_with_report(self, running_log, impossible):
        result = Gecco(impossible).abstract(running_log)
        assert not result.feasible
        assert result.grouping is None
        assert result.abstracted_log is running_log
        assert result.infeasibility is not None
        assert result.infeasibility.uncovered_classes

    def test_raise_on_infeasible(self, running_log, impossible):
        gecco = Gecco(impossible, GeccoConfig(raise_on_infeasible=True))
        with pytest.raises(InfeasibleProblemError) as excinfo:
            gecco.abstract(running_log)
        assert excinfo.value.report is not None

    def test_infeasible_cardinality(self, running_log):
        constraints = ConstraintSet([MaxGroupSize(2), MaxGroups(2)])
        result = Gecco(constraints).abstract(running_log)
        assert not result.feasible  # 8 classes cannot fit in 2 groups of <= 2


class TestLabelAttribute:
    def test_groups_labeled_by_shared_attribute(self, running_log, role_constraints):
        config = GeccoConfig(label_attribute=ROLE_KEY)
        result = Gecco(role_constraints, config).abstract(running_log)
        labels = set(result.grouping.labels.values())
        assert any(label.startswith("clerk_Activity") for label in labels)
