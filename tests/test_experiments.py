"""Unit tests for the experiment harness (configs, runner, tables, figures)."""

import pytest

from repro.constraints import CheckingMode
from repro.datasets import build_collection, running_example_log
from repro.eventlog.dfg import compute_dfg
from repro.experiments.configs import (
    ALL_SET_NAMES,
    applicable,
    constraint_set_for_log,
)
from repro.experiments.figures import (
    bipartite_to_dot,
    dfg_to_ascii,
    dfg_to_dot,
    dot_with_alternatives,
    log_dfg_dot,
)
from repro.experiments.runner import ExperimentReport, ProblemResult, run_experiment, solve_problem
from repro.experiments.tables import format_table, table3, table5, table6, table7


@pytest.fixture(scope="module")
def tiny_logs():
    return {
        name: log
        for name, log in build_collection(max_traces=15, max_classes=8).items()
        if name in ("road_fines", "credit", "bpic13")
    }


class TestConfigs:
    def test_all_sets_instantiable(self, small_synthetic_log):
        for name in ALL_SET_NAMES:
            constraints = constraint_set_for_log(name, small_synthetic_log)
            assert len(constraints) >= 1

    def test_every_set_contains_base_bound(self, small_synthetic_log):
        for name in ALL_SET_NAMES:
            constraints = constraint_set_for_log(name, small_synthetic_log)
            descriptions = [c.describe() for c in constraints]
            assert "|g| <= 8" in descriptions

    def test_modes_match_paper_categories(self, small_synthetic_log):
        # A and BL1/BL2 are anti-monotonic; N is non-monotonic... but the
        # base |g| <= 8 is anti-monotonic, so every set's mode is
        # anti-monotonic — exactly as in the paper's experiments.
        for name in ALL_SET_NAMES:
            constraints = constraint_set_for_log(name, small_synthetic_log)
            assert constraints.checking_mode is CheckingMode.ANTI_MONOTONIC

    def test_unknown_set(self, small_synthetic_log):
        with pytest.raises(ValueError):
            constraint_set_for_log("Z9", small_synthetic_log)

    def test_bl4_group_count(self, small_synthetic_log):
        constraints = constraint_set_for_log("BL4", small_synthetic_log)
        expected = len(small_synthetic_log.classes) // 2
        assert constraints.max_groups == expected
        assert constraints.min_groups == expected

    def test_applicability(self, small_synthetic_log):
        assert applicable("BL3", small_synthetic_log)  # has origin attribute
        bare = running_example_log()
        assert not applicable("BL3", bare)  # no origin attribute


class TestRunner:
    def test_solve_problem_gecco(self, tiny_logs):
        result = solve_problem(tiny_logs["credit"], "A", "DFGk", log_name="credit")
        assert result.approach == "DFGk"
        if result.solved:
            assert 0 <= result.size_red <= 1
            assert -1 <= result.silhouette <= 1
            assert result.num_groups >= 1

    def test_solve_problem_baselines(self, tiny_logs):
        for approach in ("BLQ", "BLP", "BLG"):
            set_name = {"BLQ": "BL1", "BLP": "BL4", "BLG": "A"}[approach]
            result = solve_problem(
                tiny_logs["credit"], set_name, approach, log_name="credit"
            )
            assert result.approach == approach

    def test_unknown_approach(self, tiny_logs):
        with pytest.raises(Exception):
            solve_problem(tiny_logs["credit"], "A", "SplitMiner")

    def test_run_experiment_shape(self, tiny_logs):
        report = run_experiment(
            tiny_logs, ["BL1"], ["DFGk"], candidate_timeout=10
        )
        assert len(report.rows) == len(tiny_logs)
        assert all(isinstance(row, ProblemResult) for row in report.rows)

    def test_aggregate_solved_fraction(self):
        report = ExperimentReport(
            rows=[
                ProblemResult("l", "A", "Exh", True, 0.5, 0.4, 0.1, 1.0),
                ProblemResult("l", "A", "Exh", False),
            ]
        )
        aggregate = report.aggregate()
        assert aggregate["Solved"] == 0.5
        assert aggregate["S. red."] == 0.5  # over solved only

    def test_filtered(self):
        report = ExperimentReport(
            rows=[
                ProblemResult("x", "A", "Exh", True),
                ProblemResult("y", "N", "DFGk", True),
            ]
        )
        assert len(report.filtered(approach="Exh")) == 1
        assert len(report.filtered(approach="Exh", log_name="y")) == 0


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["A", "B"], [[1, 2.5], ["xx", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text

    def test_table3(self, tiny_logs):
        text = table3(tiny_logs)
        assert "road_fines" in text
        assert "|CL|" in text

    def test_table5_6_7_render(self, tiny_logs):
        report = run_experiment(tiny_logs, ["BL1"], ["DFGk"], candidate_timeout=10)
        # Inject rows so each table has content.
        report.rows.append(ProblemResult("x", "A", "Exh", True, 0.5, 0.4, 0.1, 1.0))
        report.rows.append(ProblemResult("x", "BL4", "BLP", True, 0.5, 0.4, 0.1, 1.0))
        report.rows.append(ProblemResult("x", "A", "BLG", True, 0.3, 0.2, 0.0, 1.0))
        rows5, text5 = table5(report, approach="Exh")
        assert any(row["Const."] == "A" for row in rows5)
        rows6, text6 = table6(report)
        assert any(row["Conf."] == "Exh" for row in rows6)
        rows7, text7 = table7(report)
        assert any(row["Conf."] == "BL P" for row in rows7)
        assert "Table V" in text5 and "Table VI" in text6 and "Table VII" in text7


class TestFigures:
    def test_dfg_dot_contains_edges(self, running_log):
        dot = log_dfg_dot(running_log)
        assert '"rcp" -> "ckc"' in dot
        assert dot.startswith("digraph")

    def test_dfg_dot_filtering(self, loan_log):
        dfg = compute_dfg(loan_log)
        full = dfg_to_dot(dfg)
        filtered = dfg_to_dot(dfg, keep_fraction=0.8)
        assert filtered.count("->") < full.count("->")

    def test_ascii_rendering(self, running_log):
        text = dfg_to_ascii(compute_dfg(running_log))
        assert "rcp -> ckc" in text

    def test_alternatives_highlighting(self, running_log):
        dfg = compute_dfg(running_log)
        dot = dot_with_alternatives(
            dfg, [frozenset({"ckc", "ckt"})], [frozenset({"acc", "rej"})]
        )
        assert "color=blue" in dot
        assert "color=red" in dot

    def test_bipartite_dot(self):
        dot = bipartite_to_dot(
            [frozenset({"a", "b"}), frozenset({"c"})],
            selected=[frozenset({"a", "b"})],
            distances={frozenset({"a", "b"}): 0.5},
        )
        assert "lightgray" in dot
        assert "dist=0.50" in dot
