"""Batch manifests, the `repro batch` CLI, and the serve loop."""

import io
import json

import pytest

from repro.cli import main
from repro.exceptions import ReproError
from repro.service import (
    SequentialExecutor,
    load_manifest,
    run_batch,
    serve_loop,
    serve_socket,
)


def write_manifest(path, rows):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# test manifest\n\n")
        for row in rows:
            handle.write(json.dumps(row) + "\n")


MANIFEST_ROWS = [
    {
        "id": "tight",
        "log": "running_example",
        "constraints": [{"type": "max_group_size", "bound": 3}],
    },
    {
        "log": "running_example",
        "constraints": [{"type": "max_group_size", "bound": 5}],
        "config": {"beam_width": "auto"},
    },
    {
        "id": "loan",
        "log": "loan:15",
        "constraints": [{"type": "max_group_size", "bound": 4}],
    },
]


class TestLoadManifest:
    def test_rows_ids_and_comments(self, tmp_path):
        manifest = tmp_path / "jobs.jsonl"
        write_manifest(manifest, MANIFEST_ROWS)
        jobs = load_manifest(manifest)
        assert [job.job_id for job in jobs] == ["tight", "job-4", "loan"]

    def test_invalid_json_line_rejected(self, tmp_path):
        manifest = tmp_path / "bad.jsonl"
        manifest.write_text('{"log": "running_example"\n', encoding="utf-8")
        with pytest.raises(ReproError, match="line 1"):
            load_manifest(manifest)

    def test_empty_manifest_rejected(self, tmp_path):
        manifest = tmp_path / "empty.jsonl"
        manifest.write_text("# nothing here\n", encoding="utf-8")
        with pytest.raises(ReproError, match="no jobs"):
            load_manifest(manifest)

    def test_unknown_job_field_rejected(self, tmp_path):
        manifest = tmp_path / "odd.jsonl"
        manifest.write_text(
            json.dumps({"log": "running_example", "constraints": [], "oops": 1}) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(ReproError, match="oops"):
            load_manifest(manifest)


class TestRunBatch:
    def test_rows_in_manifest_order_and_accounting(self, tmp_path):
        manifest = tmp_path / "jobs.jsonl"
        write_manifest(manifest, MANIFEST_ROWS)
        jobs = load_manifest(manifest)
        report = run_batch(jobs, workers=1)
        assert [row["id"] for row in report.rows] == ["tight", "job-4", "loan"]
        assert all(row["feasible"] for row in report.rows)
        # Two distinct logs -> exactly two artifact builds.
        assert report.artifact_builds() == 2
        assert report.cache_hits() == 0
        assert report.jobs_per_second > 0

    def test_warm_executor_serves_from_cache(self, tmp_path):
        manifest = tmp_path / "jobs.jsonl"
        write_manifest(manifest, MANIFEST_ROWS)
        jobs = load_manifest(manifest)
        executor = SequentialExecutor()
        cold = run_batch(jobs, executor=executor)
        warm = run_batch(jobs, executor=executor)
        assert warm.cache_hits() == len(jobs)
        assert [r["fingerprint"] for r in warm.rows] == [
            r["fingerprint"] for r in cold.rows
        ]

    def test_output_jsonl(self, tmp_path):
        manifest = tmp_path / "jobs.jsonl"
        out = tmp_path / "results.jsonl"
        write_manifest(manifest, MANIFEST_ROWS)
        run_batch(load_manifest(manifest), workers=1, output=out)
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 3
        assert {"id", "fingerprint", "cached", "feasible", "groups"} <= set(rows[0])


class TestBatchCli:
    def test_end_to_end_sequential(self, tmp_path, capsys):
        manifest = tmp_path / "jobs.jsonl"
        out = tmp_path / "results.jsonl"
        write_manifest(manifest, MANIFEST_ROWS)
        code = main(["batch", str(manifest), "--output", str(out)])
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["id"] for row in rows] == ["tight", "job-4", "loan"]
        assert capsys.readouterr().err.startswith("batch: 3 jobs (3 solved")

    def test_end_to_end_workers_and_disk_cache(self, tmp_path, capsys):
        manifest = tmp_path / "jobs.jsonl"
        cache_dir = tmp_path / "cache"
        write_manifest(manifest, MANIFEST_ROWS[:2])
        code = main(
            ["batch", str(manifest), "--workers", "2", "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        captured = capsys.readouterr()
        cold_rows = [json.loads(line) for line in captured.out.splitlines()]
        assert all(row["feasible"] for row in cold_rows)
        assert list(cache_dir.glob("*/*.json"))  # disk store populated

        # Second run (fresh process-level caches) is served from disk.
        code = main(["batch", str(manifest), "--cache-dir", str(cache_dir)])
        assert code == 0
        warm_rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert all(row["cached"] for row in warm_rows)
        assert [r["fingerprint"] for r in warm_rows] == [
            r["fingerprint"] for r in cold_rows
        ]

    def test_include_log_embeds_abstracted_log(self, tmp_path, capsys):
        manifest = tmp_path / "jobs.jsonl"
        write_manifest(manifest, MANIFEST_ROWS[:1])
        assert main(["batch", str(manifest), "--include-log"]) == 0
        row = json.loads(capsys.readouterr().out.splitlines()[0])
        assert row["abstracted_log"]["traces"]


class TestServeLoop:
    def run_requests(self, requests):
        source = io.StringIO("".join(json.dumps(r) + "\n" for r in requests))
        sink = io.StringIO()
        executor = SequentialExecutor()
        served = serve_loop(source, sink, executor)
        responses = [json.loads(line) for line in sink.getvalue().splitlines()]
        return served, responses

    def test_run_stats_shutdown(self):
        served, responses = self.run_requests(
            [
                {"op": "ping"},
                {
                    "log": "running_example",
                    "constraints": [{"type": "max_group_size", "bound": 5}],
                },
                {"op": "stats"},
                {"op": "shutdown"},
                {"op": "ping"},  # never reached
            ]
        )
        assert served == 4
        assert responses[0] == {"ok": True, "pong": True}
        assert responses[1]["ok"] and responses[1]["feasible"]
        assert responses[2]["stats"]["parent"]["artifact_builds"] == 1
        assert responses[3] == {"ok": True, "bye": True}

    def test_repeat_request_served_from_cache(self):
        job = {
            "log": "running_example",
            "constraints": [{"type": "max_group_size", "bound": 5}],
        }
        _served, responses = self.run_requests([job, job])
        assert responses[0]["cached"] is False
        assert responses[1]["cached"] is True
        assert responses[0]["groups"] == responses[1]["groups"]

    def test_errors_are_in_band(self):
        served, responses = self.run_requests(
            [
                "not an object",
                {"op": "explode"},
                {"log": "no_such_builtin", "constraints": []},
                {"op": "shutdown"},
            ]
        )
        assert served == 4
        assert [r["ok"] for r in responses] == [False, False, False, True]
        assert "error" in responses[2]

    def test_invalid_json_line_survives(self):
        source = io.StringIO('{"op": "ping"}\n{broken\n{"op": "shutdown"}\n')
        sink = io.StringIO()
        served = serve_loop(source, sink, SequentialExecutor())
        responses = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert served == 3
        assert responses[1]["ok"] is False


class TestServeSocket:
    def test_empty_connection_survives_and_shutdown_stops(self):
        import socket
        import threading
        import time

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        served_box = []
        thread = threading.Thread(
            target=lambda: served_box.append(
                serve_socket("127.0.0.1", port, SequentialExecutor(), max_requests=10)
            ),
            daemon=True,
        )
        thread.start()

        def connect():
            deadline = time.time() + 30
            while True:
                try:
                    return socket.create_connection(("127.0.0.1", port), timeout=5)
                except OSError:
                    if time.time() > deadline:
                        raise
                    time.sleep(0.05)

        # A client that connects and sends nothing must not stop the server.
        connect().close()

        with connect() as conn:
            stream = conn.makefile("rw", encoding="utf-8")
            stream.write(json.dumps({"op": "ping"}) + "\n")
            stream.flush()
            assert json.loads(stream.readline()) == {"ok": True, "pong": True}
            # The shutdown op must stop the whole server.
            stream.write(json.dumps({"op": "shutdown"}) + "\n")
            stream.flush()
            assert json.loads(stream.readline())["bye"] is True
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert served_box == [2]
