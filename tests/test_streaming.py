"""Unit tests for the streaming/online abstraction layer."""

import pytest

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute, MaxGroupSize
from repro.core.gecco import GeccoConfig
from repro.datasets import running_example_log
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import ROLE_KEY, Event, EventLog, Trace, log_from_variants
from repro.exceptions import EventLogError
from repro.streaming.abstractor import StreamingAbstractor
from repro.streaming.drift import DriftDetector, dfg_distance
from repro.streaming.window import TraceWindow


def trace_of(*classes, role=None):
    attrs = {ROLE_KEY: role} if role else {}
    return Trace([Event(cls, attrs) for cls in classes])


class TestTraceWindow:
    def test_capacity_validated(self):
        with pytest.raises(EventLogError):
            TraceWindow(0)

    def test_fifo_eviction(self):
        window = TraceWindow(2)
        first, second, third = trace_of("a"), trace_of("b"), trace_of("c")
        assert window.push(first) is None
        assert window.push(second) is None
        evicted = window.push(third)
        assert evicted is first
        assert len(window) == 2
        assert window.total_seen == 3

    def test_as_log(self):
        window = TraceWindow(5)
        window.push(trace_of("a", "b"))
        log = window.as_log()
        assert isinstance(log, EventLog)
        assert log.classes == frozenset({"a", "b"})

    def test_clear(self):
        window = TraceWindow(5)
        window.push(trace_of("a"))
        window.clear()
        assert len(window) == 0

    def test_rejects_non_trace(self):
        with pytest.raises(EventLogError):
            TraceWindow(2).push("nope")


class TestDriftDetector:
    def test_distance_zero_for_identical(self):
        dfg = compute_dfg(log_from_variants([["a", "b", "c"]]))
        assert dfg_distance(dfg, dfg) == 0.0

    def test_distance_one_for_disjoint(self):
        dfg_a = compute_dfg(log_from_variants([["a", "b"]]))
        dfg_b = compute_dfg(log_from_variants([["x", "y"]]))
        assert dfg_distance(dfg_a, dfg_b) == pytest.approx(1.0)

    def test_first_check_always_drifts(self):
        detector = DriftDetector()
        dfg = compute_dfg(log_from_variants([["a", "b"]]))
        assert detector.check(dfg).drifted

    def test_stable_after_rebase(self):
        detector = DriftDetector(threshold=0.2)
        dfg = compute_dfg(log_from_variants([["a", "b", "c"]] * 5))
        detector.rebase(dfg)
        verdict = detector.check(dfg)
        assert not verdict.drifted
        assert verdict.reason == "stable"

    def test_new_class_triggers_drift(self):
        detector = DriftDetector(threshold=0.9)
        detector.rebase(compute_dfg(log_from_variants([["a", "b"]])))
        verdict = detector.check(compute_dfg(log_from_variants([["a", "b", "z"]])))
        assert verdict.drifted
        assert "z" in verdict.new_classes
        assert "new classes" in verdict.reason

    def test_frequency_shift_triggers_drift(self):
        detector = DriftDetector(threshold=0.3)
        detector.rebase(
            compute_dfg(log_from_variants({("a", "b", "c"): 10}))
        )
        shifted = compute_dfg(log_from_variants({("a", "c", "b"): 10}))
        assert detector.check(shifted).drifted

    def test_threshold_validated(self):
        with pytest.raises(EventLogError):
            DriftDetector(threshold=0.0)


class TestStreamingAbstractor:
    @pytest.fixture
    def abstractor(self):
        constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
        return StreamingAbstractor(
            constraints,
            GeccoConfig(strategy="dfg"),
            window_size=50,
            min_traces=4,
            check_every=2,
        )

    def test_warmup_passes_traces_through(self, abstractor):
        log = running_example_log()
        first = abstractor.process(log[0])
        assert [e.event_class for e in first] == log[0].classes

    def test_grouping_established_after_warmup(self, abstractor):
        log = running_example_log()
        abstractor.process_log(log)
        assert abstractor.grouping is not None
        assert abstractor.stats.regroupings >= 1
        assert abstractor.epochs

    def test_abstracts_after_grouping(self, abstractor):
        log = running_example_log()
        abstractor.process_log(log)
        # A further running-example trace now abstracts to activities.
        abstracted = abstractor.process(log[0].copy())
        classes = [e.event_class for e in abstracted]
        assert len(classes) == 3  # clrk1-like, acc, clrk2-like
        assert "rcp" not in classes

    def test_unknown_classes_pass_through(self, abstractor):
        log = running_example_log()
        abstractor.process_log(log)
        novel = trace_of("rcp", "ckc", "acc", "weird_new_step", role="clerk")
        abstracted = abstractor.process(novel)
        assert "weird_new_step" in [e.event_class for e in abstracted]

    def test_drift_triggers_regrouping(self):
        constraints = ConstraintSet([MaxGroupSize(3)])
        abstractor = StreamingAbstractor(
            constraints,
            GeccoConfig(strategy="dfg"),
            window_size=20,
            min_traces=5,
            check_every=5,
            drift_threshold=0.15,
        )
        # Phase 1: one process shape.
        for _ in range(20):
            abstractor.process(trace_of("a", "b", "c", "d"))
        epochs_before = len(abstractor.epochs)
        # Phase 2: drastically different behavior, same classes + new one.
        for _ in range(25):
            abstractor.process(trace_of("d", "c", "x", "a"))
        assert len(abstractor.epochs) > epochs_before
        assert abstractor.stats.regroupings >= 2
        final_classes = {cls for g in abstractor.grouping for cls in g}
        assert "x" in final_classes

    def test_stats_counters(self, abstractor):
        log = running_example_log()
        abstractor.process_log(log)
        assert abstractor.stats.traces_processed == len(log)
        assert abstractor.stats.drift_checks >= 1

    def test_infeasible_regrouping_keeps_old_grouping(self):
        from repro.constraints import MinInstanceAggregate

        constraints = ConstraintSet(
            [MinInstanceAggregate("duration", "sum", 1e15)]
        )
        abstractor = StreamingAbstractor(
            constraints, GeccoConfig(), window_size=10, min_traces=3, check_every=3
        )
        for trace in running_example_log():
            abstractor.process(trace)
        assert abstractor.grouping is None
        assert abstractor.stats.infeasible_regroupings >= 1
