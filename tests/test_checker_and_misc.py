"""Tests for the group checker, config knobs, and package plumbing."""

import subprocess
import sys

import pytest

from repro.constraints import (
    ConstraintSet,
    MaxGroupSize,
    MinGroupSize,
    MinInstanceAggregate,
)
from repro.core.checker import GroupChecker
from repro.core.gecco import Gecco, GeccoConfig
from repro.exceptions import (
    ConstraintError,
    DiscoveryError,
    EventLogError,
    GroupingError,
    InfeasibleProblemError,
    ReproError,
    SolverError,
    XESParseError,
)


class TestGroupChecker:
    def test_holds_memoized(self, running_log, role_constraints):
        checker = GroupChecker(running_log, role_constraints)
        group = frozenset({"rcp", "ckc"})
        assert checker.holds(group)
        checks = checker.checks_performed
        assert checker.holds(group)
        assert checker.checks_performed == checks

    def test_holds_class_only_skips_instances(self, running_log):
        constraints = ConstraintSet(
            [MaxGroupSize(3), MinInstanceAggregate("duration", "sum", 1e12)]
        )
        checker = GroupChecker(running_log, constraints)
        group = frozenset({"rcp", "ckc"})
        # Class-based part passes, instance-based is impossible.
        assert checker.holds_class_only(group)
        assert not checker.holds(group)

    def test_subset_shortcut_rechecks_instances(self, running_log):
        """The soundness fix: a satisfied subset does not exempt the
        supergroup from instance-based validation."""
        constraints = ConstraintSet(
            [MinInstanceAggregate("duration", "sum", 20.0)]
        )
        checker = GroupChecker(running_log, constraints)
        assert checker.holds(frozenset({"ckt"}))  # 30 >= 20
        # {ckt, prio} gains a singleton <prio> instance in sigma_1 (5 < 20).
        assert not checker.holds_given_satisfying_subset(frozenset({"ckt", "prio"}))

    def test_subset_shortcut_agrees_with_full_holds(self, running_log):
        constraints = ConstraintSet(
            [MinGroupSize(1), MinInstanceAggregate("duration", "sum", 20.0)]
        )
        shortcut_checker = GroupChecker(running_log, constraints)
        full_checker = GroupChecker(running_log, constraints)
        for group in (
            frozenset({"ckt", "rej"}),
            frozenset({"ckt", "prio"}),
            frozenset({"rcp", "ckc"}),
        ):
            if full_checker.holds_class_only(group):
                assert shortcut_checker.holds_given_satisfying_subset(
                    group
                ) == full_checker.holds(group)

    def test_shortcut_trivial_without_instance_constraints(self, running_log):
        checker = GroupChecker(running_log, ConstraintSet([MinGroupSize(1)]))
        assert checker.holds_given_satisfying_subset(frozenset({"rcp", "arv"}))


class TestDistanceConfig:
    def test_alternative_distance_selectable(self, running_log, role_constraints):
        result = Gecco(
            role_constraints, GeccoConfig(distance="jaccard")
        ).abstract(running_log)
        assert result.feasible

    def test_unknown_distance_rejected(self):
        with pytest.raises(ConstraintError):
            GeccoConfig(distance="euclidean")

    def test_eq1_is_default(self):
        assert GeccoConfig().distance == "eq1"


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            EventLogError,
            XESParseError,
            ConstraintError,
            GroupingError,
            InfeasibleProblemError,
            SolverError,
            DiscoveryError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_xes_error_is_eventlog_error(self):
        assert issubclass(XESParseError, EventLogError)

    def test_infeasible_carries_report(self):
        error = InfeasibleProblemError("nope", report="details")
        assert error.report == "details"


class TestPackagePlumbing:
    def test_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "constraint-types"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "max_group_size" in completed.stdout

    def test_public_api_surface(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__
