"""Unit tests for the alternative distance functions."""

import pytest

from repro.core.alt_distance import (
    ALTERNATIVE_DISTANCES,
    EntropyDistance,
    FrequencyWeightedDistance,
    JaccardDistance,
)
from repro.core.selection import select_optimal_grouping
from repro.eventlog.events import log_from_variants
from repro.exceptions import GroupingError


@pytest.fixture(params=sorted(ALTERNATIVE_DISTANCES))
def distance(request, running_log):
    return ALTERNATIVE_DISTANCES[request.param](running_log)


class TestProtocol:
    def test_non_negative(self, distance, running_log):
        for cls in running_log.classes:
            assert distance.group_distance({cls}) >= 0.0

    def test_singleton_positive(self, distance, running_log):
        for cls in running_log.classes:
            assert distance.group_distance({cls}) > 0.0

    def test_empty_group_rejected(self, distance):
        with pytest.raises(GroupingError):
            distance.group_distance(frozenset())

    def test_memoized(self, distance):
        value_a = distance.group_distance({"rcp", "ckc"})
        value_b = distance.group_distance({"rcp", "ckc"})
        assert value_a == value_b
        assert frozenset({"rcp", "ckc"}) in distance._cache

    def test_grouping_distance_sums(self, distance, running_log):
        groups = [{"rcp", "ckc"}, {"acc"}]
        assert distance.grouping_distance(groups) == pytest.approx(
            sum(distance.group_distance(g) for g in groups)
        )

    def test_usable_in_step2(self, distance, running_log):
        candidates = {frozenset({cls}) for cls in running_log.classes}
        candidates.add(frozenset({"prio", "inf", "arv"}))
        result = select_optimal_grouping(
            running_log, candidates, distance, backend="bnb"
        )
        assert result.feasible


class TestFrequencyWeighted:
    def test_matches_eq1_on_uniform_variants(self):
        """With all-distinct variants, weighting degenerates to Eq. 1."""
        from repro.core.distance import DistanceFunction

        log = log_from_variants([["a", "b", "c"], ["a", "c", "b"]])
        weighted = FrequencyWeightedDistance(log)
        plain = DistanceFunction(log)
        for group in ({"a", "b"}, {"b", "c"}, {"a"}):
            assert weighted.group_distance(group) == pytest.approx(
                plain.group_distance(group)
            )

    def test_frequent_variant_dominates(self):
        # Interruption only in the frequent variant weighs heavier than
        # one in the rare variant.
        log_frequent = log_from_variants({("a", "x", "b"): 9, ("a", "b"): 1})
        log_rare = log_from_variants({("a", "x", "b"): 1, ("a", "b"): 9})
        heavy = FrequencyWeightedDistance(log_frequent).group_distance({"a", "b"})
        light = FrequencyWeightedDistance(log_rare).group_distance({"a", "b"})
        assert heavy > light


class TestJaccard:
    def test_perfect_cooccurrence(self):
        log = log_from_variants([["a", "b"], ["a", "b"]])
        distance = JaccardDistance(log)
        assert distance.group_distance({"a", "b"}) == pytest.approx(0.5)

    def test_disjoint_classes(self):
        log = log_from_variants([["a"], ["b"]])
        distance = JaccardDistance(log)
        assert distance.group_distance({"a", "b"}) == pytest.approx(1.5)

    def test_order_insensitive(self):
        ordered = log_from_variants([["a", "b"]] * 4)
        scrambled = log_from_variants([["b", "a"]] * 4)
        assert JaccardDistance(ordered).group_distance(
            {"a", "b"}
        ) == pytest.approx(JaccardDistance(scrambled).group_distance({"a", "b"}))


class TestEntropy:
    def test_single_ordering_is_cheap(self):
        log = log_from_variants([["a", "b"]] * 8)
        distance = EntropyDistance(log)
        assert distance.group_distance({"a", "b"}) == pytest.approx(0.5)

    def test_mixed_orderings_cost_more(self):
        stable = log_from_variants([["a", "b"]] * 8)
        mixed = log_from_variants({("a", "b"): 4, ("b", "a"): 4})
        assert EntropyDistance(mixed).group_distance(
            {"a", "b"}
        ) > EntropyDistance(stable).group_distance({"a", "b"})
