"""Unit tests for exclusive-candidate merging (Algorithm 3)."""

from repro.constraints import ConstraintSet, MaxGroupSize
from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import dfg_candidates
from repro.core.exclusive import merge_exclusive_candidates
from repro.eventlog.events import log_from_variants


class TestRunningExample:
    def test_merges_behavioral_alternatives(self, running_log, role_constraints):
        checker = GroupChecker(running_log, role_constraints)
        candidates = dfg_candidates(running_log, role_constraints, checker=checker).groups
        merged, stats = merge_exclusive_candidates(running_log, candidates, checker)
        assert frozenset({"ckc", "ckt"}) in merged
        assert stats.merges_added >= 1

    def test_pre_extension_creates_paper_group(self, running_log, role_constraints):
        """{rcp, ckc} and {rcp, ckt} in G => {rcp, ckc, ckt} is added."""
        checker = GroupChecker(running_log, role_constraints)
        candidates = dfg_candidates(running_log, role_constraints, checker=checker).groups
        assert frozenset({"rcp", "ckc"}) in candidates
        assert frozenset({"rcp", "ckt"}) in candidates
        merged, _ = merge_exclusive_candidates(running_log, candidates, checker)
        assert frozenset({"rcp", "ckc", "ckt"}) in merged

    def test_acc_rej_not_merged(self, running_log, role_constraints):
        """acc/rej have different postsets (Fig. 6): no merge."""
        checker = GroupChecker(running_log, role_constraints)
        candidates = dfg_candidates(running_log, role_constraints, checker=checker).groups
        merged, _ = merge_exclusive_candidates(running_log, candidates, checker)
        assert frozenset({"acc", "rej"}) not in merged

    def test_input_set_not_mutated(self, running_log, role_constraints):
        checker = GroupChecker(running_log, role_constraints)
        candidates = dfg_candidates(running_log, role_constraints, checker=checker).groups
        before = set(candidates)
        merge_exclusive_candidates(running_log, candidates, checker)
        assert candidates == before


class TestThreeWayAlternatives:
    def test_iteratively_merges_three_alternatives(self):
        # a is followed by one of x, y, z, each followed by b.
        log = log_from_variants(
            {("a", "x", "b"): 3, ("a", "y", "b"): 3, ("a", "z", "b"): 3}
        )
        constraints = ConstraintSet([])
        checker = GroupChecker(log, constraints)
        candidates = dfg_candidates(log, constraints, checker=checker).groups
        merged, _ = merge_exclusive_candidates(log, candidates, checker)
        assert frozenset({"x", "y"}) in merged
        assert frozenset({"x", "y", "z"}) in merged

    def test_class_constraints_respected_by_merge(self):
        log = log_from_variants(
            {("a", "x", "b"): 3, ("a", "y", "b"): 3, ("a", "z", "b"): 3}
        )
        constraints = ConstraintSet([MaxGroupSize(2)])
        checker = GroupChecker(log, constraints)
        candidates = dfg_candidates(log, constraints, checker=checker).groups
        merged, _ = merge_exclusive_candidates(log, candidates, checker)
        assert frozenset({"x", "y"}) in merged
        assert frozenset({"x", "y", "z"}) not in merged  # |g| <= 2


class TestNoFalseMerges:
    def test_sequential_classes_not_merged(self):
        log = log_from_variants([["a", "b", "c"]])
        constraints = ConstraintSet([])
        checker = GroupChecker(log, constraints)
        candidates = dfg_candidates(log, constraints, checker=checker).groups
        merged, stats = merge_exclusive_candidates(log, candidates, checker)
        assert merged == candidates
        assert stats.merges_added == 0
