"""Extra tests for figure rendering and DFG filtering interplay."""

import pytest

from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.events import log_from_variants
from repro.experiments.figures import (
    bipartite_to_dot,
    dfg_to_ascii,
    dfg_to_dot,
    dot_with_alternatives,
    log_dfg_dot,
)


class TestDotEscaping:
    def test_quotes_in_class_names_escaped(self):
        log = log_from_variants([['say "hi"', "b"]])
        dot = log_dfg_dot(log)
        assert '\\"hi\\"' in dot

    def test_title_quoted(self, running_log):
        dot = log_dfg_dot(running_log, title='my "log"')
        assert dot.splitlines()[0].startswith("digraph ")


class TestEmptyGraphs:
    def test_empty_dfg_renders(self):
        dfg = DirectlyFollowsGraph(nodes=frozenset())
        assert dfg_to_dot(dfg).startswith("digraph")
        assert dfg_to_ascii(dfg) == "nodes: "

    def test_bipartite_without_selection(self):
        dot = bipartite_to_dot([frozenset({"a"})])
        assert "lightgray" not in dot

    def test_alternatives_without_highlights(self, running_log):
        dfg = compute_dfg(running_log)
        dot = dot_with_alternatives(dfg, alternatives=[], exclusives=[])
        assert "color=blue" not in dot
        assert "color=red" not in dot


class TestFilteredRendering:
    def test_ascii_respects_filter(self):
        log = log_from_variants({("a", "b"): 9, ("a", "c"): 1})
        dfg = compute_dfg(log)
        full = dfg_to_ascii(dfg)
        filtered = dfg_to_ascii(dfg, keep_fraction=0.5)
        assert "a -> c" in full
        assert "a -> c" not in filtered

    def test_start_end_shapes(self, running_log):
        dot = log_dfg_dot(running_log)
        # rcp starts traces, inf/arv end them: rendered as boxes.
        assert '"rcp" [shape=box];' in dot
        assert '"acc" [shape=ellipse];' in dot

    def test_deterministic_output(self, running_log):
        assert log_dfg_dot(running_log) == log_dfg_dot(running_log)
