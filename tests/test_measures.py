"""Unit tests for the evaluation measures."""

import numpy as np
import pytest

from repro.core.gecco import Gecco, GeccoConfig
from repro.datasets import PAPER_OPTIMAL_GROUPS
from repro.eventlog.events import log_from_variants
from repro.exceptions import GroupingError
from repro.measures.positional import (
    class_position_profiles,
    positional_distance_matrix,
)
from repro.measures.reduction import (
    complexity_reduction,
    size_reduction,
    size_reduction_of,
)
from repro.measures.silhouette import silhouette_coefficient, silhouette_from_matrix


class TestSizeReduction:
    def test_basic(self):
        assert size_reduction(8, 24) == pytest.approx(1 - 8 / 24)

    def test_no_reduction(self):
        assert size_reduction(5, 5) == 0.0

    def test_degenerate_universe(self):
        assert size_reduction(0, 0) == 0.0

    def test_of_grouping(self, running_log):
        assert size_reduction_of(PAPER_OPTIMAL_GROUPS, running_log) == pytest.approx(0.5)


class TestComplexityReduction:
    def test_abstraction_reduces_complexity(self, running_log, role_constraints):
        result = Gecco(role_constraints, GeccoConfig()).abstract(running_log)
        reduction = complexity_reduction(running_log, result.abstracted_log)
        assert reduction > 0

    def test_identity_abstraction_is_zero(self, running_log):
        assert complexity_reduction(running_log, running_log) == pytest.approx(0.0)

    def test_sequential_original_returns_zero(self):
        log = log_from_variants([["a", "b", "c"]] * 3)
        assert complexity_reduction(log, log) == 0.0


class TestPositionalDistance:
    def test_profiles(self):
        log = log_from_variants([["a", "b", "a"]])
        (profile,) = class_position_profiles(log)
        assert profile["a"] == 1.0  # positions 0 and 2
        assert profile["b"] == 1.0

    def test_matrix_symmetric_zero_diagonal(self, running_log):
        classes, matrix = positional_distance_matrix(running_log)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_adjacent_closer_than_distant(self, running_log):
        classes, matrix = positional_distance_matrix(running_log)
        index = {cls: i for i, cls in enumerate(classes)}
        close = matrix[index["rcp"], index["ckc"]]
        far = matrix[index["rcp"], index["arv"]]
        assert close < far

    def test_never_cooccurring_pair_penalized(self):
        log = log_from_variants([["a", "b"], ["c", "b"]])
        classes, matrix = positional_distance_matrix(log)
        index = {cls: i for i, cls in enumerate(classes)}
        assert matrix[index["a"], index["c"]] > matrix[index["a"], index["b"]]


class TestSilhouette:
    def test_good_grouping_scores_higher(self, running_log):
        good = silhouette_coefficient(running_log, PAPER_OPTIMAL_GROUPS)
        bad = silhouette_coefficient(
            running_log,
            [
                {"rcp", "arv"},   # start + end: incoherent
                {"ckc", "inf"},
                {"ckt", "prio"},
                {"acc"},
                {"rej"},
            ],
        )
        assert good > bad

    def test_single_group_is_zero(self, running_log):
        assert silhouette_coefficient(running_log, [running_log.classes]) == 0.0

    def test_all_singletons_are_zero(self, running_log):
        grouping = [{cls} for cls in running_log.classes]
        assert silhouette_coefficient(running_log, grouping) == 0.0

    def test_range(self, running_log):
        value = silhouette_coefficient(running_log, PAPER_OPTIMAL_GROUPS)
        assert -1.0 <= value <= 1.0

    def test_unknown_class_rejected(self, running_log):
        classes, matrix = positional_distance_matrix(running_log)
        with pytest.raises(GroupingError):
            silhouette_from_matrix([{"zz"}], classes, matrix)


class TestVariantReduction:
    def test_abstraction_collapses_variants(self, running_log, role_constraints):
        from repro.measures.reduction import variant_reduction

        result = Gecco(role_constraints, GeccoConfig()).abstract(running_log)
        # 4 variants collapse to 3 abstracted variants (σ1 and σ3 merge).
        assert variant_reduction(running_log, result.abstracted_log) == pytest.approx(
            1 - 3 / 4
        )

    def test_identity_is_zero(self, running_log):
        from repro.measures.reduction import variant_reduction

        assert variant_reduction(running_log, running_log) == 0.0

    def test_empty_log(self):
        from repro.measures.reduction import variant_reduction

        empty = log_from_variants([])
        assert variant_reduction(empty, empty) == 0.0
