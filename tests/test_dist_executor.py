"""DistributedExecutor: byte-identity with sequential + multi-host semantics.

The distributed backend must be a transparent transport: a fleet of
broker-fed workers has to produce exactly what the deterministic
in-process executor produces, converge to one artifact build per log,
coalesce duplicate submissions, and survive a worker dying mid-job.
"""

import threading

import pytest

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute, MaxGroupSize
from repro.datasets import running_example_log
from repro.eventlog.events import ROLE_KEY
from repro.exceptions import ReproError
from repro.service import (
    AbstractionJob,
    LogRef,
    SequentialExecutor,
    run_batch,
)
from repro.service.dist import DistributedExecutor, connect_broker, job_affinity_key
from repro.service.dist.worker import worker_loop
from repro.service.serialization import result_signature


def _jobs():
    """A small manifest: two distinct logs, several constraint sets each."""
    from repro.eventlog.events import EventLog

    # A genuinely different log (a prefix of the running example):
    # content-addressing keys by log *content*, so a byte-identical
    # inline copy would share fingerprints with the builtin reference.
    inline = LogRef.inline(
        EventLog(list(running_example_log())[:3]), name="re-prefix"
    )
    return [
        AbstractionJob(
            log=LogRef.builtin("running_example"),
            constraints=ConstraintSet([MaxGroupSize(3)]),
            job_id="re-size3",
        ),
        AbstractionJob(
            log=LogRef.builtin("running_example"),
            constraints=ConstraintSet([MaxGroupSize(5)]),
            job_id="re-size5",
        ),
        AbstractionJob(
            log=LogRef.builtin("running_example"),
            constraints=ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)]),
            job_id="re-roles",
        ),
        AbstractionJob(
            log=inline,
            constraints=ConstraintSet([MaxGroupSize(4)]),
            job_id="inline-size4",
        ),
    ]


def _dist_executor(tmp_path, name, workers=2, **kwargs):
    kwargs.setdefault("lease", 5.0)
    kwargs.setdefault("poll_interval", 0.02)
    return DistributedExecutor(
        f"fs://{tmp_path / name}", workers=workers,
        disk_dir=tmp_path / f"{name}-cache", **kwargs
    )


class TestByteIdentity:
    def test_two_worker_fleet_matches_sequential(self, tmp_path):
        jobs = _jobs()
        sequential = [SequentialExecutor().submit(job).result() for job in jobs]
        with _dist_executor(tmp_path, "q") as pool:
            distributed = pool.map(jobs)
            stats = pool.stats()
        for mine, reference in zip(distributed, sequential):
            assert result_signature(mine) == result_signature(reference)
            assert mine.distance == reference.distance
            assert sorted(sorted(group) for group in mine.grouping.groups) == sorted(
                sorted(group) for group in reference.grouping.groups
            )
        # Affinity routing: artifacts were built once per log across
        # the whole fleet, not once per (worker, log).
        assert stats["workers_total"]["artifact_builds"] == 2

    def test_sqlite_broker_parity(self, tmp_path):
        job = _jobs()[0]
        reference = SequentialExecutor().submit(job).result()
        with DistributedExecutor(
            f"sqlite://{tmp_path / 'queue.db'}", workers=1,
            lease=5.0, poll_interval=0.02,
        ) as pool:
            mine = pool.submit(job).result(timeout=60)
        assert result_signature(mine) == result_signature(reference)

    def test_run_batch_over_a_broker(self, tmp_path):
        jobs = _jobs()[:2]
        reference = run_batch([job for job in jobs], workers=1)
        report = run_batch(
            jobs, broker=f"fs://{tmp_path / 'q'}", workers=2,
            disk_dir=tmp_path / "cache",
        )
        assert [row["id"] for row in report.rows] == [
            row["id"] for row in reference.rows
        ]
        for mine, theirs in zip(report.rows, reference.rows):
            for key in ("fingerprint", "feasible", "distance", "groups",
                        "num_candidates", "engine"):
                assert mine[key] == theirs[key], key


class TestCaching:
    def test_duplicate_submissions_coalesce(self, tmp_path):
        job_a, job_b = _jobs()[0], _jobs()[0]
        with _dist_executor(tmp_path, "q", workers=1) as pool:
            first = pool.submit(job_a)
            second = pool.submit(job_b)  # identical fingerprint
            assert first.result(timeout=60) is second.result(timeout=60)
            third = pool.submit(_jobs()[0])  # after completion: cache hit
            assert third.result(timeout=60) is first.result()
            assert third.cached is True

    def test_warm_disk_store_serves_a_cold_executor(self, tmp_path):
        job = _jobs()[0]
        with _dist_executor(tmp_path, "q") as pool:
            cold = pool.submit(job).result(timeout=60)
        # Fresh executor + fresh broker, same disk store: the parent
        # cache reads the fleet's shared result tier, no worker runs.
        with DistributedExecutor(
            f"fs://{tmp_path / 'q2'}", workers=0,
            disk_dir=tmp_path / "q-cache", poll_interval=0.02,
        ) as warm_pool:
            handle = warm_pool.submit(job)
            assert handle.result(timeout=5) is not None
            assert handle.cached is True
            assert result_signature(handle.result()) == result_signature(cold)


class TestFaultTolerance:
    def test_worker_crash_mid_job_is_requeued_and_finished(self, tmp_path):
        broker_url = f"fs://{tmp_path / 'q'}"
        job = _jobs()[0]
        with DistributedExecutor(
            broker_url, workers=0, lease=0.2, poll_interval=0.02
        ) as pool:
            handle = pool.submit(job)
            # A "worker" claims the job and dies silently (no heartbeat,
            # no completion): its lease must expire, the executor's
            # requeue sweep must redeliver, and a healthy late-joining
            # worker must finish the job.
            crasher = connect_broker(broker_url)
            crashed_claim = crasher.claim("crashed-worker", lease=0.2)
            assert crashed_claim is not None
            survivor = threading.Thread(
                target=worker_loop,
                args=(broker_url,),
                kwargs=dict(lease=5.0, poll_interval=0.02, max_tasks=1,
                            idle_exit=10.0),
                daemon=True,
            )
            survivor.start()
            result = handle.result(timeout=60)
            survivor.join(timeout=10)
            assert result.feasible
            assert crashed_claim.envelope.attempts == 0
            crasher.close()

    def test_failing_call_raises_at_the_handle(self, tmp_path):
        with _dist_executor(tmp_path, "q", workers=1) as pool:
            handle = pool.submit_call(_raise_value_error)
            with pytest.raises(ValueError, match="deliberate"):
                handle.result(timeout=60)

    def test_submit_after_shutdown_is_rejected(self, tmp_path):
        pool = _dist_executor(tmp_path, "q", workers=0)
        pool.shutdown()
        with pytest.raises(ReproError, match="shut down"):
            pool.submit(_jobs()[0])


class TestSubmitCallFanOut:
    def test_selection_components_fan_out_over_the_fleet(self, tmp_path):
        from repro.core.distance import DistanceFunction
        from repro.eventlog.events import Event, EventLog, Trace
        from repro.selection2 import select_decomposed

        # Two class clusters that never co-occur: two genuinely
        # independent Step-2 components, solved on different workers.
        traces = [
            Trace([Event(name, {ROLE_KEY: "x"}) for name in ("a", "b")])
            for _ in range(4)
        ] + [
            Trace([Event(name, {ROLE_KEY: "y"}) for name in ("c", "d", "e")])
            for _ in range(4)
        ]
        log = EventLog(traces)
        candidates = {
            frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"}),
            frozenset({"c"}), frozenset({"d"}), frozenset({"e"}),
            frozenset({"c", "d"}), frozenset({"c", "d", "e"}),
        }
        distance = DistanceFunction(log)
        inline = select_decomposed(log, candidates, distance)
        with _dist_executor(tmp_path, "q", workers=2) as pool:
            routed = select_decomposed(log, candidates, distance, executor=pool)
        assert routed.grouping is not None
        assert set(routed.grouping.groups) == set(inline.grouping.groups)
        assert routed.objective == inline.objective


def _raise_value_error(*args, cache=None, **kwargs):
    """Module-level failing call body (picklable by reference)."""
    raise ValueError("deliberate failure")


class TestAffinityKeys:
    def test_same_log_same_key_distinct_logs_distinct_keys(self):
        jobs = _jobs()
        assert job_affinity_key(jobs[0]) == job_affinity_key(jobs[1])
        assert job_affinity_key(jobs[0]) != job_affinity_key(jobs[3])
