"""Unit tests for the event model (Event, Trace, EventLog)."""

from datetime import datetime, timezone

import pytest

from repro.eventlog.events import (
    CLASS_KEY,
    TIMESTAMP_KEY,
    Event,
    EventLog,
    Trace,
    log_from_variants,
)
from repro.exceptions import EventLogError


class TestEvent:
    def test_requires_nonempty_class(self):
        with pytest.raises(EventLogError):
            Event("")

    def test_requires_string_class(self):
        with pytest.raises(EventLogError):
            Event(42)

    def test_attribute_access(self):
        event = Event("a", {"cost": 10})
        assert event["cost"] == 10
        assert event.get("cost") == 10
        assert event.get("missing", "fallback") == "fallback"
        assert "cost" in event
        assert "missing" not in event

    def test_timestamp_normalization_from_float(self):
        event = Event("a", {TIMESTAMP_KEY: 0.0})
        assert event.timestamp == datetime(1970, 1, 1, tzinfo=timezone.utc)

    def test_timestamp_normalization_from_iso_string(self):
        event = Event("a", {TIMESTAMP_KEY: "2021-01-01T12:00:00"})
        assert event.timestamp.tzinfo is not None
        assert event.timestamp.hour == 12

    def test_naive_datetime_gets_utc(self):
        event = Event("a", {TIMESTAMP_KEY: datetime(2021, 1, 1)})
        assert event.timestamp.tzinfo is timezone.utc

    def test_role_property(self):
        assert Event("a", {"org:role": "clerk"}).role == "clerk"
        assert Event("a").role is None

    def test_equality_and_copy(self):
        event = Event("a", {"x": 1})
        clone = event.copy()
        assert clone == event
        clone.attributes["x"] = 2
        assert clone != event

    def test_repr_mentions_class(self):
        assert "rcp" in repr(Event("rcp"))


class TestTrace:
    def test_rejects_non_events(self):
        with pytest.raises(EventLogError):
            Trace(["not-an-event"])

    def test_sequence_protocol(self):
        trace = Trace([Event("a"), Event("b"), Event("c")])
        assert len(trace) == 3
        assert trace[1].event_class == "b"
        assert [e.event_class for e in trace] == ["a", "b", "c"]

    def test_slicing_returns_trace(self):
        trace = Trace([Event("a"), Event("b"), Event("c")], {"k": "v"})
        head = trace[:2]
        assert isinstance(head, Trace)
        assert head.classes == ["a", "b"]
        assert head.attributes == {"k": "v"}

    def test_classes_and_variant(self):
        trace = Trace([Event("a"), Event("b"), Event("a")])
        assert trace.classes == ["a", "b", "a"]
        assert trace.variant() == ("a", "b", "a")
        assert trace.class_set == frozenset({"a", "b"})

    def test_project(self):
        trace = Trace([Event("a"), Event("b"), Event("c"), Event("a")])
        projected = trace.project({"a", "c"})
        assert projected.classes == ["a", "c", "a"]

    def test_append_validates(self):
        trace = Trace()
        trace.append(Event("a"))
        assert len(trace) == 1
        with pytest.raises(EventLogError):
            trace.append("nope")

    def test_case_id(self):
        assert Trace([], {CLASS_KEY: "case_7"}).case_id == "case_7"


class TestEventLog:
    def test_rejects_non_traces(self):
        with pytest.raises(EventLogError):
            EventLog(["nope"])

    def test_classes_and_counts(self):
        log = log_from_variants([["a", "b"], ["a", "c", "a"]])
        assert log.classes == frozenset({"a", "b", "c"})
        assert log.class_counts == {"a": 3, "b": 1, "c": 1}
        assert log.event_count == 5

    def test_occurs_true_when_co_occurring(self):
        log = log_from_variants([["a", "b"], ["b", "c"]])
        assert log.occurs({"a", "b"})
        assert log.occurs({"b", "c"})

    def test_occurs_false_when_never_together(self):
        log = log_from_variants([["a", "b"], ["b", "c"]])
        assert not log.occurs({"a", "c"})

    def test_occurs_empty_and_unknown(self):
        log = log_from_variants([["a"]])
        assert not log.occurs([])
        assert not log.occurs({"zz"})

    def test_traces_containing(self):
        log = log_from_variants([["a", "b"], ["b", "c"], ["a", "b", "c"]])
        assert log.traces_containing({"a", "b"}) == [0, 2]
        assert log.traces_containing({"a", "c"}) == [2]

    def test_append_invalidates_caches(self):
        log = log_from_variants([["a"]])
        assert log.classes == frozenset({"a"})
        log.append(Trace([Event("b")]))
        assert log.classes == frozenset({"a", "b"})
        assert log.occurs({"b"})

    def test_slicing_returns_log(self):
        log = log_from_variants([["a"], ["b"], ["c"]])
        assert isinstance(log[:2], EventLog)
        assert len(log[:2]) == 2

    def test_copy_is_deep(self):
        log = log_from_variants([["a"]])
        clone = log.copy()
        clone[0][0].attributes["x"] = 1
        assert "x" not in log[0][0].attributes


class TestLogFromVariants:
    def test_mapping_with_counts(self):
        log = log_from_variants({("a", "b"): 3, ("c",): 1})
        assert len(log) == 4
        assert log.class_counts["a"] == 3

    def test_per_class_attributes(self):
        log = log_from_variants([["a"]], {"a": {"org:role": "clerk"}})
        assert log[0][0].role == "clerk"

    def test_case_ids_unique(self):
        log = log_from_variants({("a",): 2})
        assert log[0].case_id != log[1].case_id
