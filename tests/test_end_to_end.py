"""End-to-end regression tests pinning the paper's narrative.

Each test corresponds to a concrete claim, figure, or worked example in
the paper; together they document how faithfully this reproduction
tracks the original (see EXPERIMENTS.md).
"""

import pytest

from repro.constraints import (
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroupSize,
)
from repro.core.gecco import Gecco, GeccoConfig
from repro.datasets import PAPER_OPTIMAL_GROUPS
from repro.datasets.loan_process import loan_application_log
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import ROLE_KEY
from repro.measures.reduction import complexity_reduction, size_reduction
from repro.measures.silhouette import silhouette_coefficient


class TestRunningExampleNarrative:
    """§II + Fig. 7: the role constraint yields exactly four groups."""

    def test_fig3_abstraction(self, running_log, role_constraints):
        result = Gecco(role_constraints).abstract(running_log)
        assert set(result.grouping.groups) == set(PAPER_OPTIMAL_GROUPS)

        # Fig. 3's DFG: clrk1 -> {acc, rej}, acc/rej -> clrk2, rej -> clrk1.
        labels = {
            group: result.grouping.label_of(group) for group in result.grouping
        }
        clrk1 = labels[frozenset({"rcp", "ckc", "ckt"})]
        clrk2 = labels[frozenset({"prio", "inf", "arv"})]
        dfg = compute_dfg(result.abstracted_log)
        assert dfg.has_edge(clrk1, "acc")
        assert dfg.has_edge(clrk1, "rej")
        assert dfg.has_edge("acc", clrk2)
        assert dfg.has_edge("rej", clrk1)  # restart after rejection
        assert not dfg.has_edge("acc", "rej")

    def test_naive_role_grouping_scores_worse(self, running_log):
        """§II: g_clrk = all clerk steps, g_mgr = {acc, rej} is worse than
        the four-group optimum *on the DFG-reachable candidate set*."""
        from repro.core.distance import DistanceFunction

        distance = DistanceFunction(running_log)
        naive = [
            frozenset({"rcp", "ckc", "ckt", "prio", "inf", "arv"}),
            frozenset({"acc", "rej"}),
        ]
        assert distance.grouping_distance(naive) > 0
        # The DFG-based optimum is what the paper reports.
        assert distance.grouping_distance(PAPER_OPTIMAL_GROUPS) == pytest.approx(
            3.0833333, abs=1e-6
        )


class TestCaseStudy:
    """§VI-D: origin constraint on the loan log (Figs. 1 and 8)."""

    @pytest.fixture(scope="class")
    def case_study_result(self):
        log = loan_application_log(num_traces=150)
        constraints = ConstraintSet(
            [MaxGroupSize(8), MaxDistinctClassAttribute("origin", 1)]
        )
        config = GeccoConfig(
            strategy="dfg", beam_width="auto", label_attribute="origin"
        )
        return log, Gecco(constraints, config).abstract(log)

    def test_feasible_with_substantial_reduction(self, case_study_result):
        log, result = case_study_result
        assert result.feasible
        # Paper: 24 classes -> 7 activities.  Shape check: strong reduction.
        assert len(result.grouping) < len(log.classes) / 2

    def test_no_group_mixes_origins(self, case_study_result):
        log, result = case_study_result
        from repro.datasets.loan_process import ORIGIN_OF

        for group in result.grouping:
            assert len({ORIGIN_OF[cls] for cls in group}) == 1

    def test_dfg_complexity_shrinks(self, case_study_result):
        log, result = case_study_result
        original_edges = len(compute_dfg(log).edge_counts)
        abstracted_edges = len(compute_dfg(result.abstracted_log).edge_counts)
        assert abstracted_edges < original_edges

    def test_origin_labels_applied(self, case_study_result):
        _, result = case_study_result
        labels = set(result.grouping.labels.values())
        assert any(label.startswith("A_Activity") for label in labels)


class TestMeasuresShape:
    """Sanity: the paper's qualitative orderings hold on the running example."""

    def test_gecco_beats_random_partition_on_silhouette(self, running_log, role_constraints):
        result = Gecco(role_constraints).abstract(running_log)
        good = silhouette_coefficient(running_log, result.grouping)
        scrambled = [
            {"rcp", "arv"}, {"ckc", "inf"}, {"ckt", "prio"}, {"acc"}, {"rej"},
        ]
        assert good > silhouette_coefficient(running_log, scrambled)

    def test_size_and_complexity_reductions_positive(self, running_log, role_constraints):
        result = Gecco(role_constraints).abstract(running_log)
        assert size_reduction(len(result.grouping), len(running_log.classes)) == 0.5
        assert complexity_reduction(running_log, result.abstracted_log) > 0
