"""Unit tests for exhaustive candidate computation (Algorithm 1)."""

import pytest

from repro.constraints import (
    CannotLink,
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroupSize,
    MinGroupSize,
    MinInstanceAggregate,
    MustLink,
)
from repro.core.candidates import exhaustive_candidates
from repro.core.checker import GroupChecker
from repro.eventlog.events import ROLE_KEY, log_from_variants


class TestBasics:
    def test_unconstrained_candidates_are_co_occurring_subsets(self):
        log = log_from_variants([["a", "b"], ["b", "c"]])
        result = exhaustive_candidates(log, ConstraintSet([]))
        assert frozenset({"a", "b"}) in result.groups
        assert frozenset({"b", "c"}) in result.groups
        # a and c never co-occur -> {a, c} and {a, b, c} are not candidates.
        assert frozenset({"a", "c"}) not in result.groups
        assert frozenset({"a", "b", "c"}) not in result.groups

    def test_singletons_always_candidates_when_allowed(self, running_log):
        result = exhaustive_candidates(running_log, ConstraintSet([]))
        for cls in running_log.classes:
            assert frozenset({cls}) in result.groups

    def test_running_example_contains_paper_groups(self, running_log, role_constraints):
        result = exhaustive_candidates(running_log, role_constraints)
        assert frozenset({"prio", "inf", "arv"}) in result.groups
        # {rcp, ckc} and {rcp, ckt} co-occur and share the clerk role.
        assert frozenset({"rcp", "ckc"}) in result.groups
        assert frozenset({"rcp", "ckt"}) in result.groups
        # Manager/clerk mixes are excluded by the role constraint.
        assert frozenset({"acc", "prio"}) not in result.groups


class TestAntiMonotonicPruning:
    def test_max_size_respected(self, running_log):
        constraints = ConstraintSet([MaxGroupSize(2)])
        result = exhaustive_candidates(running_log, constraints)
        assert all(len(group) <= 2 for group in result.groups)

    def test_cannot_link_respected(self, running_log):
        constraints = ConstraintSet([CannotLink("rcp", "acc")])
        result = exhaustive_candidates(running_log, constraints)
        assert all(
            not ({"rcp", "acc"} <= set(group)) for group in result.groups
        )

    def test_pruning_matches_unpruned_results(self, running_log):
        """Anti-monotonic pruning must not change the candidate set.

        We compare against a brute-force enumeration of all co-occurring
        subsets checked directly.
        """
        constraints = ConstraintSet([MaxGroupSize(3), CannotLink("rcp", "prio")])
        result = exhaustive_candidates(running_log, constraints)

        import itertools

        checker = GroupChecker(running_log, constraints)
        classes = sorted(running_log.classes)
        brute = set()
        for size in range(1, len(classes) + 1):
            for combo in itertools.combinations(classes, size):
                group = frozenset(combo)
                if running_log.occurs(group) and checker.holds(group):
                    brute.add(group)
        assert result.groups == brute


class TestMonotonicPruning:
    def test_min_size_mode_finds_supergroups(self, running_log):
        constraints = ConstraintSet([MinGroupSize(2)])
        result = exhaustive_candidates(running_log, constraints)
        assert all(len(group) >= 2 for group in result.groups)
        assert frozenset({"rcp", "ckc"}) in result.groups

    def test_monotonic_subset_prunes_recorded(self, running_log):
        constraints = ConstraintSet([MinGroupSize(2)])
        result = exhaustive_candidates(running_log, constraints)
        assert result.stats.subset_prunes > 0

    def test_monotonic_matches_brute_force(self, running_log):
        constraints = ConstraintSet(
            [MinInstanceAggregate("duration", "sum", 20.0)]
        )
        result = exhaustive_candidates(running_log, constraints)

        import itertools

        checker = GroupChecker(running_log, constraints)
        classes = sorted(running_log.classes)
        brute = set()
        for size in range(1, len(classes) + 1):
            for combo in itertools.combinations(classes, size):
                group = frozenset(combo)
                if running_log.occurs(group) and checker.holds(group):
                    brute.add(group)
        assert result.groups == brute


class TestNonMonotonic:
    def test_must_link_candidates(self, running_log):
        constraints = ConstraintSet([MustLink("inf", "arv")])
        result = exhaustive_candidates(running_log, constraints)
        for group in result.groups:
            assert ("inf" in group) == ("arv" in group)
        assert frozenset({"inf", "arv"}) in result.groups


class TestTimeout:
    def test_timeout_returns_partial_results(self, running_log, role_constraints):
        result = exhaustive_candidates(running_log, role_constraints, timeout=0.0)
        assert result.stats.timed_out

    def test_no_timeout_flag_on_normal_run(self, running_log, role_constraints):
        result = exhaustive_candidates(running_log, role_constraints)
        assert not result.stats.timed_out
        assert result.stats.iterations >= 1
        assert result.stats.seconds >= 0


class TestStats:
    def test_checker_sharing(self, running_log, role_constraints):
        checker = GroupChecker(running_log, role_constraints)
        exhaustive_candidates(running_log, role_constraints, checker=checker)
        assert checker.cache_size() > 0
