"""Pickle and JSON round-trips of everything the worker pool ships."""

import pickle

import pytest

from repro.constraints import ConstraintSet, MaxGroups, MaxGroupSize
from repro.constraints.parser import parse_constraint
from repro.constraints.sets import InfeasibilityReport
from repro.core.gecco import Gecco, GeccoConfig
from repro.core.grouping import Grouping
from repro.service.serialization import (
    grouping_from_dict,
    grouping_to_dict,
    log_from_dict,
    log_to_dict,
    result_from_dict,
    result_signature,
    result_to_dict,
)
from tests.test_service_fingerprint import SPEC_SAMPLES


def logs_equal(a, b) -> bool:
    """Structural equality of two event logs (EventLog lacks __eq__)."""
    return (
        a.attributes == b.attributes
        and len(a) == len(b)
        and all(ta == tb for ta, tb in zip(a, b))
    )


@pytest.fixture(scope="module")
def running_result(running_log, role_constraints):
    return Gecco(role_constraints, GeccoConfig(strategy="dfg")).abstract(running_log)


@pytest.fixture(scope="module")
def loan_result(loan_log):
    constraints = ConstraintSet([MaxGroupSize(5)])
    return Gecco(constraints, GeccoConfig(beam_width="auto")).abstract(loan_log)


@pytest.fixture(scope="module")
def infeasible_result(running_log):
    # One group of at most two classes cannot cover eight classes.
    constraints = ConstraintSet([MaxGroups(1), MaxGroupSize(2)])
    return Gecco(constraints).abstract(running_log)


class TestPickleRoundTrip:
    @pytest.mark.parametrize(
        "fixture", ["running_result", "loan_result", "infeasible_result"]
    )
    def test_result_pickles(self, fixture, request):
        result = request.getfixturevalue(fixture)
        clone = pickle.loads(pickle.dumps(result))
        assert result_signature(clone) == result_signature(result)
        assert clone.feasible == result.feasible
        assert clone.engine == result.engine
        assert logs_equal(clone.abstracted_log, result.abstracted_log)

    def test_grouping_pickles(self, running_result):
        grouping = running_result.grouping
        clone = pickle.loads(pickle.dumps(grouping))
        assert set(clone.groups) == set(grouping.groups)
        assert clone.labels == grouping.labels

    def test_infeasibility_report_pickles(self, infeasible_result):
        report = infeasible_result.infeasibility
        assert report is not None
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report

    @pytest.mark.parametrize("spec", SPEC_SAMPLES, ids=lambda s: s["type"])
    def test_every_constraint_type_pickles(self, spec):
        constraint = parse_constraint(spec)
        clone = pickle.loads(pickle.dumps(constraint))
        assert type(clone) is type(constraint)
        assert clone.describe() == constraint.describe()

    def test_constraint_set_pickles(self):
        original = ConstraintSet([parse_constraint(s) for s in SPEC_SAMPLES])
        clone = pickle.loads(pickle.dumps(original))
        assert clone.to_json() == original.to_json()
        assert len(clone.instance_based) == len(original.instance_based)


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "fixture", ["running_result", "loan_result", "infeasible_result"]
    )
    def test_result_json(self, fixture, request):
        result = request.getfixturevalue(fixture)
        clone = result_from_dict(result_to_dict(result))
        assert result_signature(clone) == result_signature(result)
        assert clone.num_candidates == result.num_candidates
        assert clone.timings.total == result.timings.total
        if result.candidate_stats is not None:
            assert type(clone.candidate_stats) is type(result.candidate_stats)
        if result.infeasibility is not None:
            assert clone.infeasibility == result.infeasibility

    def test_log_json_preserves_timestamps(self, loan_log):
        clone = log_from_dict(log_to_dict(loan_log))
        assert logs_equal(clone, loan_log)
        assert clone[0][0].timestamp == loan_log[0][0].timestamp

    def test_grouping_json_preserves_labels(self, running_log):
        universe = sorted(running_log.classes)
        groups = [universe[:3], universe[3:]]
        grouping = Grouping(
            groups, universe, labels={frozenset(universe[:3]): "Custom"}
        )
        clone = grouping_from_dict(grouping_to_dict(grouping))
        assert set(clone.groups) == set(grouping.groups)
        assert clone.labels == grouping.labels

    def test_infeasibility_json(self):
        report = InfeasibilityReport(
            uncovered_classes=["x"],
            class_constraint_violations={"y": ["|g| <= 1"]},
            instance_violation_fractions={"c": {"x": 0.5}},
        )
        from repro.service.serialization import (
            infeasibility_from_dict,
            infeasibility_to_dict,
        )

        assert infeasibility_from_dict(infeasibility_to_dict(report)) == report

    def test_result_without_logs_is_compact_but_not_rebuildable(self, running_result):
        from repro.exceptions import ReproError

        compact = result_to_dict(running_result, include_logs=False)
        assert compact["abstracted_log"] is None
        with pytest.raises(ReproError):
            result_from_dict(compact)
