"""Unit tests for log statistics, variants, and filtering utilities."""

import pytest

from repro.eventlog.events import log_from_variants
from repro.eventlog.filtering import (
    filter_classes,
    filter_events,
    filter_traces,
    keep_top_variants,
    sample_traces,
    truncate_traces,
)
from repro.eventlog.statistics import describe
from repro.eventlog.variants import (
    top_variants,
    traces_of_variant,
    variant_count,
    variant_counts,
)


@pytest.fixture
def log():
    return log_from_variants({("a", "b", "c"): 3, ("a", "c"): 2, ("a",): 1})


class TestVariants:
    def test_variant_counts(self, log):
        counts = variant_counts(log)
        assert counts[("a", "b", "c")] == 3
        assert counts[("a", "c")] == 2
        assert counts[("a",)] == 1

    def test_variant_count(self, log):
        assert variant_count(log) == 3

    def test_top_variants_order(self, log):
        ranked = top_variants(log)
        assert ranked[0] == (("a", "b", "c"), 3)
        assert ranked[-1] == (("a",), 1)

    def test_top_variants_limit(self, log):
        assert len(top_variants(log, limit=2)) == 2

    def test_traces_of_variant(self, log):
        assert traces_of_variant(log, ("a", "c")) == [3, 4]


class TestStatistics:
    def test_describe(self, log):
        stats = describe(log)
        assert stats.num_classes == 3
        assert stats.num_traces == 6
        assert stats.num_variants == 3
        assert stats.num_variant_events == 6  # 3 + 2 + 1
        assert stats.num_events == 14
        assert stats.avg_trace_length == pytest.approx(14 / 6)

    def test_empty_log(self):
        stats = describe(log_from_variants([]))
        assert stats.num_traces == 0
        assert stats.avg_trace_length == 0.0

    def test_as_row(self, log):
        row = describe(log).as_row()
        assert row["|CL|"] == 3
        assert row["Traces"] == 6


class TestFiltering:
    def test_filter_classes_keep(self, log):
        filtered = filter_classes(log, {"a", "b"})
        assert filtered.classes == frozenset({"a", "b"})
        assert len(filtered) == 6

    def test_filter_classes_drop(self, log):
        filtered = filter_classes(log, {"a"}, keep=False)
        assert "a" not in filtered.classes
        # The single-event ('a',) traces vanish entirely.
        assert len(filtered) == 5

    def test_filter_traces(self, log):
        filtered = filter_traces(log, lambda trace: len(trace) == 3)
        assert len(filtered) == 3

    def test_filter_events(self, log):
        filtered = filter_events(log, lambda event: event.event_class != "c")
        assert "c" not in filtered.classes

    def test_sample_traces_deterministic(self, log):
        sample_a = sample_traces(log, 3, seed=7)
        sample_b = sample_traces(log, 3, seed=7)
        assert [t.variant() for t in sample_a] == [t.variant() for t in sample_b]
        assert len(sample_a) == 3

    def test_sample_larger_than_log(self, log):
        assert len(sample_traces(log, 100)) == len(log)

    def test_sample_negative(self, log):
        with pytest.raises(ValueError):
            sample_traces(log, -1)

    def test_keep_top_variants(self, log):
        filtered = keep_top_variants(log, 1)
        assert variant_count(filtered) == 1
        assert len(filtered) == 3

    def test_keep_zero_variants(self, log):
        assert len(keep_top_variants(log, 0)) == 0

    def test_truncate(self, log):
        truncated = truncate_traces(log, 2)
        assert max(len(trace) for trace in truncated) == 2

    def test_truncate_invalid(self, log):
        with pytest.raises(ValueError):
            truncate_traces(log, 0)

    def test_inputs_not_mutated(self, log):
        before = len(log)
        filter_classes(log, {"a"})
        sample_traces(log, 2)
        assert len(log) == before
