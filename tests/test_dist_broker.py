"""Broker contract tests: the same suite over both zero-dep brokers.

The distributed runtime's correctness rests on three broker
guarantees exercised here per implementation:

* **exclusive claims** — two workers never both hold a live lease;
* **exactly-once requeue** — a lease-expired task is redelivered once,
  however many concurrent ``requeue_expired`` sweeps observe it, and a
  task that exhausts its delivery budget is quarantined with an error
  result instead of crash-looping;
* **idempotent duplicate delivery** — a stale completion (the original
  worker finishing after its lease lapsed) is recorded, reported as
  stale, and never corrupts the result channel; queued duplicates of a
  finished task are dropped at claim time.
"""

import pickle
import time

import pytest

from repro.exceptions import ReproError
from repro.service.dist.broker import (
    TaskEnvelope,
    connect_broker,
    decode_result,
    encode_result,
    new_task_id,
)
from repro.service.dist.fsbroker import FilesystemBroker
from repro.service.dist.sqlitebroker import SQLiteBroker
from repro.service.dist.worker import worker_loop


@pytest.fixture(params=["fs", "sqlite"])
def broker(request, tmp_path):
    """One broker per zero-dependency backend, on a fresh directory."""
    if request.param == "fs":
        made = FilesystemBroker(tmp_path / "queue")
    else:
        made = SQLiteBroker(tmp_path / "queue.db")
    yield made
    made.close()


def _task(payload=b"", priority=0, affinity=None, kind="call"):
    return TaskEnvelope(
        task_id=new_task_id(),
        kind=kind,
        payload=payload or pickle.dumps((_noop, (), {})),
        priority=priority,
        affinity=affinity,
    )


def _noop(*args, cache=None, **kwargs):
    """Module-level no-op task body (picklable)."""
    return "ok"


def _boom(*args, cache=None, **kwargs):
    """Module-level failing task body (picklable)."""
    raise ValueError("boom")


class TestQueueBasics:
    def test_priority_then_fifo_order(self, broker):
        low = _task(priority=0)
        first_high = _task(priority=5)
        second_high = _task(priority=5)
        for envelope in (low, first_high, second_high):
            broker.put(envelope)
        claimed = [broker.claim("w", lease=30.0).envelope.task_id for _ in range(3)]
        assert claimed == [first_high.task_id, second_high.task_id, low.task_id]

    def test_claims_are_exclusive(self, broker):
        task = _task()
        broker.put(task)
        first = broker.claim("w1", lease=30.0)
        second = broker.claim("w2", lease=30.0)
        assert first is not None and first.envelope.task_id == task.task_id
        assert second is None

    def test_empty_queue_claims_none(self, broker):
        assert broker.claim("w", lease=30.0) is None

    def test_complete_records_result(self, broker):
        task = _task()
        broker.put(task)
        claim = broker.claim("w", lease=30.0)
        assert broker.complete(claim, encode_result(value=41)) is True
        record = decode_result(broker.get_result(task.task_id))
        assert record["ok"] and record["value"] == 41
        broker.forget_result(task.task_id)
        assert broker.get_result(task.task_id) is None
        assert broker.stats()["claimed"] == 0

    def test_stop_flag_round_trip(self, broker):
        assert not broker.stop_requested()
        broker.request_stop()
        assert broker.stop_requested()
        broker.clear_stop()
        assert not broker.stop_requested()


class TestLeaseExpiry:
    def test_expired_lease_requeues_exactly_once(self, broker):
        task = _task()
        broker.put(task)
        claim = broker.claim("dead-worker", lease=0.05)
        assert claim is not None
        time.sleep(0.1)
        # Two concurrent sweeps must redeliver the task exactly once.
        moved = broker.requeue_expired() + broker.requeue_expired()
        assert moved == 1
        assert broker.stats()["queued"] == 1 and broker.stats()["claimed"] == 0
        redelivered = broker.claim("live-worker", lease=30.0)
        assert redelivered.envelope.task_id == task.task_id
        assert redelivered.envelope.attempts == 1

    def test_live_lease_is_not_requeued(self, broker):
        broker.put(_task())
        broker.claim("w", lease=30.0)
        assert broker.requeue_expired() == 0
        assert broker.stats()["claimed"] == 1

    def test_heartbeat_extends_the_lease(self, broker):
        broker.put(_task())
        claim = broker.claim("w", lease=0.15)
        for _ in range(4):
            time.sleep(0.05)
            assert broker.heartbeat(claim, lease=0.15) is True
        assert broker.requeue_expired() == 0

    def test_heartbeat_reports_lost_claim(self, broker):
        broker.put(_task())
        claim = broker.claim("w", lease=0.05)
        time.sleep(0.1)
        assert broker.requeue_expired() == 1
        assert broker.heartbeat(claim, lease=30.0) is False

    def test_exhausted_attempts_quarantine_with_error_result(self, broker):
        task = _task()
        broker.put(task)
        for attempt in range(3):
            claim = broker.claim(f"dying-{attempt}", lease=0.05)
            assert claim is not None, f"attempt {attempt} found no task"
            time.sleep(0.1)
            broker.requeue_expired(max_attempts=3)
        stats = broker.stats()
        assert stats["queued"] == 0 and stats["claimed"] == 0
        assert stats["quarantined"] == 1
        record = decode_result(broker.get_result(task.task_id))
        assert not record["ok"] and "attempts" in record["error"]


class TestDuplicateDelivery:
    def test_stale_completion_is_recorded_but_flagged(self, broker):
        task = _task()
        broker.put(task)
        slow = broker.claim("slow-worker", lease=0.05)
        time.sleep(0.1)
        assert broker.requeue_expired() == 1
        fast = broker.claim("fast-worker", lease=30.0)
        assert fast.envelope.task_id == task.task_id
        assert broker.complete(fast, encode_result(value="fast")) is True
        # The slow worker finishes afterwards: stale, but harmless.
        assert broker.complete(slow, encode_result(value="slow")) is False
        assert decode_result(broker.get_result(task.task_id))["ok"]
        assert broker.stats()["claimed"] == 0

    def test_queued_duplicate_of_finished_task_is_dropped(self, broker):
        task = _task()
        broker.put(task)
        claim = broker.claim("w", lease=30.0)
        broker.complete(claim, encode_result(value=1))
        # The same task id arrives again (redelivery after a partition).
        broker.put(
            TaskEnvelope(
                task_id=task.task_id, kind=task.kind, payload=task.payload
            )
        )
        assert broker.claim("w", lease=30.0) is None
        assert broker.stats()["queued"] == 0


class TestAffinity:
    def test_affinity_key_sticks_to_first_claimant(self, broker):
        first, second = _task(affinity="abc123"), _task(affinity="abc123")
        broker.put(first)
        broker.put(second)
        owner_claim = broker.claim("owner", lease=30.0)
        assert owner_claim.envelope.task_id == first.task_id
        # Another worker skips the owned key; the owner picks it up.
        assert broker.claim("other", lease=30.0) is None
        assert broker.claim("owner", lease=30.0).envelope.task_id == second.task_id

    def test_dead_worker_releases_its_affinity_hold(self, broker):
        # Affinity ownership leases are much longer than task leases;
        # requeueing a dead worker's task must release its hold so the
        # redelivery is claimable *immediately*, not after the affinity
        # lease runs out.
        task = _task(affinity="sticky")
        broker.put(task)
        assert broker.claim("dead-worker", lease=0.05) is not None
        time.sleep(0.1)
        assert broker.requeue_expired() == 1
        rescued = broker.claim("survivor", lease=30.0)
        assert rescued is not None and rescued.envelope.task_id == task.task_id

    def test_clean_worker_exit_releases_affinity(self, broker):
        # A worker that exits cleanly (max_tasks/idle_exit/stop) must
        # hand its logs back immediately; otherwise queued same-log
        # tasks stall until the long affinity ownership lease expires.
        first, second = _task(affinity="hot-log"), _task(affinity="hot-log")
        broker.put(first)
        worker_loop(broker, lease=30.0, poll_interval=0.01, max_tasks=1,
                    idle_exit=0.5)
        broker.put(second)
        rescued = broker.claim("successor", lease=30.0)
        assert rescued is not None and rescued.envelope.task_id == second.task_id

    def test_unrelated_affinity_keys_spread(self, broker):
        broker.put(_task(affinity="log-a"))
        broker.put(_task(affinity="log-b"))
        assert broker.claim("w1", lease=30.0) is not None
        assert broker.claim("w2", lease=30.0) is not None


class TestCorruptEntries:
    def test_unpicklable_payload_is_quarantined_not_crash_looped(self, broker):
        broker.put(_task(payload=b"\x00this is not a pickle"))
        good = _task()
        broker.put(good)
        stats = worker_loop(
            broker, lease=5.0, poll_interval=0.01, idle_exit=0.5, max_attempts=3
        )
        # The first deliveries might be transient corruption, so they
        # are released for redelivery; the poison burns its delivery
        # budget and quarantines instead of crash-looping the loop.
        assert stats.released == 2
        assert stats.quarantined == 1
        assert stats.completed == 1  # the loop survived and ran the good task
        assert broker.stats()["quarantined"] == 1
        assert decode_result(broker.get_result(good.task_id))["ok"]

    def test_foreign_file_in_fs_queue_is_parked(self, tmp_path):
        broker = FilesystemBroker(tmp_path / "queue")
        (tmp_path / "queue" / "queue" / "not-a-task.json").write_text("{}")
        assert broker.claim("w", lease=30.0) is None
        assert broker.stats()["quarantined"] == 0  # only .task files count
        assert not (tmp_path / "queue" / "queue" / "not-a-task.json").exists()

    def test_failing_task_completes_with_error_envelope(self, broker):
        task = TaskEnvelope(
            task_id=new_task_id(), kind="call",
            payload=pickle.dumps((_boom, (), {})),
        )
        broker.put(task)
        stats = worker_loop(
            broker, lease=5.0, poll_interval=0.01, max_tasks=1, idle_exit=0.2
        )
        assert stats.failed == 1 and stats.quarantined == 0
        record = decode_result(broker.get_result(task.task_id))
        assert not record["ok"] and "boom" in record["error"]
        assert isinstance(record.get("exception"), ValueError)


class TestResultHygiene:
    def test_orphaned_results_are_garbage_collected(self, tmp_path):
        # A redelivered duplicate can complete after the submitter
        # consumed the original result and moved on; the orphan must
        # not accumulate forever in the shared store.
        broker = FilesystemBroker(tmp_path / "queue", result_ttl=0.05)
        task = _task()
        broker.put(task)
        claim = broker.claim("w", lease=30.0)
        broker.complete(claim, encode_result(value=1))
        assert broker.stats()["results"] == 1
        time.sleep(0.1)
        broker.requeue_expired()
        assert broker.stats()["results"] == 0

    def test_orphaned_results_are_garbage_collected_sqlite(self, tmp_path):
        broker = SQLiteBroker(tmp_path / "queue.db", result_ttl=0.05)
        task = _task()
        broker.put(task)
        claim = broker.claim("w", lease=30.0)
        broker.complete(claim, encode_result(value=1))
        assert broker.stats()["results"] == 1
        time.sleep(0.1)
        broker.requeue_expired()
        assert broker.stats()["results"] == 0
        broker.close()


class TestWorkerResilience:
    def test_transient_claim_errors_do_not_kill_the_loop(self, broker):
        task = _task()
        broker.put(task)
        original_claim = broker.claim
        hiccups = {"left": 2}

        def flaky_claim(worker, lease):
            if hiccups["left"]:
                hiccups["left"] -= 1
                raise OSError("transient broker hiccup")
            return original_claim(worker, lease)

        broker.claim = flaky_claim
        stats = worker_loop(
            broker, lease=5.0, poll_interval=0.01, max_tasks=1, idle_exit=1.0
        )
        broker.claim = original_claim
        assert stats.completed == 1
        assert stats.broker_errors == 2
        assert decode_result(broker.get_result(task.task_id))["ok"]

    def test_transient_complete_error_is_retried(self, broker):
        task = _task()
        broker.put(task)
        original_complete = broker.complete
        hiccups = {"left": 1}

        def flaky_complete(claim, payload):
            if hiccups["left"]:
                hiccups["left"] -= 1
                raise OSError("transient broker hiccup")
            return original_complete(claim, payload)

        broker.complete = flaky_complete
        stats = worker_loop(
            broker, lease=5.0, poll_interval=0.01, max_tasks=1, idle_exit=1.0
        )
        broker.complete = original_complete
        assert stats.completed == 1
        assert stats.broker_errors == 1
        assert decode_result(broker.get_result(task.task_id))["ok"]


class TestEnvelopes:
    def test_unpicklable_value_degrades_to_error(self):
        record = decode_result(encode_result(value=lambda: None))
        assert not record["ok"] and "picklable" in record["error"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            TaskEnvelope(task_id="x", kind="mystery", payload=b"")


class TestConnectBroker:
    def test_fs_url_and_bare_path(self, tmp_path):
        for url in (f"fs://{tmp_path}/a", str(tmp_path / "b")):
            made = connect_broker(url)
            assert isinstance(made, FilesystemBroker)
            assert made.url == url

    def test_sqlite_url(self, tmp_path):
        made = connect_broker(f"sqlite://{tmp_path}/queue.db")
        assert isinstance(made, SQLiteBroker)
        made.close()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ReproError):
            connect_broker("kafka://nope")

    def test_redis_without_package_gives_install_hint(self, monkeypatch):
        import repro.service.dist.redisbroker as redisbroker

        monkeypatch.setattr(redisbroker, "HAVE_REDIS", False)
        with pytest.raises(ReproError, match="redis"):
            connect_broker("redis://localhost:6379/0")
