"""Unit tests for the Petri-net substrate (alpha miner + token replay)."""

import pytest

from repro.eventlog.events import log_from_variants
from repro.exceptions import DiscoveryError
from repro.mining.alpha import alpha_miner, order_relations
from repro.mining.petri import PetriNet, Place, petri_to_dot, token_replay


class TestOrderRelations:
    def test_causality_and_parallel(self):
        log = log_from_variants({("a", "b", "c", "d"): 5, ("a", "c", "b", "d"): 5})
        causal, follows, parallel = order_relations(log)
        assert ("a", "b") in causal
        assert ("a", "c") in causal
        assert frozenset({"b", "c"}) in parallel
        assert ("b", "c") not in causal  # mutual -> parallel, not causal

    def test_pure_sequence(self):
        log = log_from_variants([["a", "b", "c"]])
        causal, follows, parallel = order_relations(log)
        assert causal == {("a", "b"), ("b", "c")}
        assert not parallel


class TestAlphaMiner:
    def test_sequence_net_structure(self):
        log = log_from_variants([["a", "b", "c"]] * 3)
        net = alpha_miner(log)
        # start, end + one place per causal pair.
        assert net.size == 4 + 3
        assert net.inputs["a"] == frozenset({net.initial_place})
        assert net.outputs["c"] == frozenset({net.final_place})

    def test_xor_shares_places(self):
        log = log_from_variants({("a", "b", "d"): 5, ("a", "c", "d"): 5})
        net = alpha_miner(log)
        # The choice between b and c shares one input and one output place:
        # p_{a}->{b,c} and p_{b,c}->{d}.
        assert net.outputs["a"] == net.inputs["b"] | net.inputs["c"]
        assert len(net.outputs["a"]) == 1

    def test_parallel_distinct_places(self):
        log = log_from_variants({("a", "b", "c", "d"): 5, ("a", "c", "b", "d"): 5})
        net = alpha_miner(log)
        # b and c are parallel: they must not share an input place.
        assert not (net.inputs["b"] & net.inputs["c"])

    def test_empty_log_rejected(self):
        with pytest.raises(DiscoveryError):
            alpha_miner(log_from_variants([]))

    def test_perfect_fitness_on_structured_logs(self):
        for variants in (
            {("a", "b", "c"): 4},
            {("a", "b", "d"): 4, ("a", "c", "d"): 4},
            {("a", "b", "c", "d"): 4, ("a", "c", "b", "d"): 4},
        ):
            log = log_from_variants(variants)
            net = alpha_miner(log)
            replay = token_replay(net, log)
            assert replay.fitness == pytest.approx(1.0), variants
            assert replay.fitting_traces == replay.total_traces


class TestTokenReplay:
    @pytest.fixture
    def seq_net(self):
        return alpha_miner(log_from_variants([["a", "b", "c"]] * 3))

    def test_non_fitting_trace_penalized(self, seq_net):
        wrong = log_from_variants([["a", "c", "b"]])
        replay = token_replay(seq_net, wrong)
        assert replay.fitness < 1.0
        assert replay.missing > 0
        assert replay.fitting_traces == 0

    def test_unknown_classes_skipped(self, seq_net):
        log = log_from_variants([["a", "zz", "b", "c"]])
        replay = token_replay(seq_net, log)
        assert replay.fitness == pytest.approx(1.0)

    def test_fitness_between_zero_and_one(self, seq_net, running_log):
        replay = token_replay(seq_net, running_log)
        assert 0.0 <= replay.fitness <= 1.0


class TestPetriNetMechanics:
    def test_fire_moves_tokens(self):
        place_in, place_out = Place("i"), Place("o")
        net = PetriNet(
            transitions=frozenset({"t"}),
            places=frozenset({place_in, place_out}),
            inputs={"t": frozenset({place_in})},
            outputs={"t": frozenset({place_out})},
            initial_place=place_in,
            final_place=place_out,
        )
        marking = net.initial_marking()
        assert net.is_enabled("t", marking)
        after = net.fire("t", marking)
        assert after[place_out] == 1
        assert after[place_in] == 0

    def test_fire_disabled_raises(self):
        place_in, place_out = Place("i"), Place("o")
        net = PetriNet(
            transitions=frozenset({"t"}),
            places=frozenset({place_in, place_out}),
            inputs={"t": frozenset({place_in})},
            outputs={"t": frozenset({place_out})},
            initial_place=place_in,
            final_place=place_out,
        )
        from collections import Counter

        with pytest.raises(DiscoveryError):
            net.fire("t", Counter())

    def test_dot_rendering(self):
        net = alpha_miner(log_from_variants([["a", "b"]]))
        dot = petri_to_dot(net)
        assert '"t:a"' in dot and "shape=box" in dot and "shape=circle" in dot


class TestAbstractionImprovesFitnessStructure:
    def test_abstracted_log_yields_simpler_net(self, running_log, role_constraints):
        """The paper's §I claim: abstraction yields more structured models."""
        from repro.core.gecco import Gecco

        result = Gecco(role_constraints).abstract(running_log)
        net_before = alpha_miner(running_log)
        net_after = alpha_miner(result.abstracted_log)
        assert net_after.size < net_before.size
