"""Repo-root pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run even
when the package has not been installed (the offline execution
environment lacks ``wheel``, which breaks ``pip install -e .``; see
README "Installation").
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
