"""Tour of GECCO's constraint catalog (paper Table II) and diagnostics.

Demonstrates, on a synthetic log with roles, durations and costs:

* grouping, class-based, and instance-based constraints;
* loose ("95% of instances") constraints;
* what GECCO reports when a constraint set is infeasible (§V-C);
* declarative JSON constraint specifications.

Run with:  python examples/constraint_catalog.py
"""

import json

from repro import Gecco, GeccoConfig
from repro.constraints import (
    AtLeastFraction,
    CannotLink,
    ConstraintSet,
    MaxDistinctInstanceAttribute,
    MaxGroups,
    MaxGroupSize,
    MaxInstanceAggregate,
    MinInstanceAggregate,
)
from repro.constraints.parser import parse_constraints
from repro.datasets.collection import TABLE_III_SPECS, build_log


def show(title: str, constraints: ConstraintSet, log) -> None:
    result = Gecco(constraints, GeccoConfig(strategy="dfg")).abstract(log)
    print(f"\n--- {title}")
    print(f"constraints: {constraints.describe()}")
    if result.feasible:
        print(
            f"solved: {len(result.grouping)} groups, "
            f"dist {result.distance:.2f}, "
            f"candidates {result.num_candidates}"
        )
        for group in result.grouping.non_trivial_groups():
            print(f"  merged: {{{', '.join(sorted(group))}}}")
    else:
        print("INFEASIBLE — diagnostics (paper §V-C):")
        print("  " + result.infeasibility.summary().replace("\n", "\n  "))


def main() -> None:
    spec = next(spec for spec in TABLE_III_SPECS if spec.name == "sepsis")
    log = build_log(spec, max_traces=60)
    print(f"log: {log}")

    show(
        "class-based: bounded size + cannot-link",
        ConstraintSet(
            [MaxGroupSize(4), CannotLink(*sorted(log.classes)[:2])]
        ),
        log,
    )
    show(
        "instance-based: at most 2 roles per activity instance",
        ConstraintSet([MaxGroupSize(6), MaxDistinctInstanceAttribute("org:role", 2)]),
        log,
    )
    show(
        "loose: 90% of instances cost at most 400$",
        ConstraintSet(
            [
                MaxGroupSize(6),
                AtLeastFraction(MaxInstanceAggregate("cost", "sum", 400.0), 0.9),
            ]
        ),
        log,
    )
    show(
        "grouping: at most 3 high-level activities",
        ConstraintSet([MaxGroupSize(8), MaxGroups(3)]),
        log,
    )
    show(
        "infeasible: every instance must sum to absurd duration",
        ConstraintSet([MinInstanceAggregate("duration", "sum", 1e12)]),
        log,
    )

    # The same constraints, declaratively (what the CLI consumes).
    specs = [
        {"type": "max_group_size", "bound": 6},
        {"type": "max_instance_aggregate", "key": "cost", "how": "sum",
         "threshold": 400, "fraction": 0.9},
    ]
    constraints = parse_constraints(specs)
    print("\n--- parsed from JSON:")
    print(json.dumps(specs, indent=2))
    print(f"-> {constraints.describe()}")
    result = Gecco(constraints).abstract(log)
    print(f"solved: {result.feasible}, groups: {len(result.grouping or [])}")


if __name__ == "__main__":
    main()
