"""Online abstraction of an evolving event stream (paper §VIII outlook).

The paper's future-work list includes lifting GECCO to streams so
groupings adapt to new arrivals.  This example simulates a process that
*changes* mid-stream — a request-handling process gains a fraud-check
phase — and shows the streaming abstractor (a) establishing a grouping
once enough traces arrived, (b) abstracting arriving traces on the
fly, and (c) detecting the drift and re-grouping, with a full epoch
audit trail.

Run with:  python examples/streaming_abstraction.py
"""

import random

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
from repro.core.gecco import GeccoConfig
from repro.eventlog.events import ROLE_KEY, Event, Trace
from repro.streaming import StreamingAbstractor

ROLES_PHASE1 = {
    "receive": "clerk", "check": "clerk",
    "approve": "manager", "reject": "manager",
    "notify": "clerk", "archive": "clerk",
}
ROLES_PHASE2 = {
    **ROLES_PHASE1,
    "fraud_scan": "auditor", "fraud_report": "auditor",
}


def make_trace(rng: random.Random, with_fraud: bool) -> Trace:
    classes = ["receive", "check"]
    if with_fraud:
        classes += ["fraud_scan", "fraud_report"]
    classes.append("approve" if rng.random() < 0.7 else "reject")
    classes += ["notify", "archive"]
    roles = ROLES_PHASE2 if with_fraud else ROLES_PHASE1
    return Trace([Event(cls, {ROLE_KEY: roles[cls]}) for cls in classes])


def main() -> None:
    rng = random.Random(7)
    abstractor = StreamingAbstractor(
        ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)]),
        GeccoConfig(strategy="dfg"),
        window_size=60,
        min_traces=10,
        check_every=5,
        drift_threshold=0.15,
    )

    print("phase 1: request handling without fraud checks")
    for index in range(40):
        abstracted = abstractor.process(make_trace(rng, with_fraud=False))
        if index in (5, 25):
            lifted = ", ".join(event.event_class for event in abstracted)
            print(f"  trace {index:>3}: <{lifted}>")

    print("\nphase 2: a fraud-check phase is introduced")
    for index in range(40, 100):
        abstracted = abstractor.process(make_trace(rng, with_fraud=True))
        if index in (45, 95):
            lifted = ", ".join(event.event_class for event in abstracted)
            print(f"  trace {index:>3}: <{lifted}>")

    print("\nepoch audit trail:")
    for epoch in abstractor.epochs:
        groups = (
            "none"
            if epoch.grouping is None
            else "; ".join(
                "{" + ", ".join(sorted(group)) + "}" for group in epoch.grouping
            )
        )
        print(f"  after trace {epoch.started_at_trace:>3} ({epoch.reason}):")
        print(f"    {groups}")

    stats = abstractor.stats
    print(
        f"\nprocessed {stats.traces_processed} traces, "
        f"{stats.regroupings} re-groupings, "
        f"{stats.drift_checks} drift checks"
    )
    final = {cls for group in abstractor.grouping for cls in group}
    assert "fraud_scan" in final, "final grouping must cover the new classes"


if __name__ == "__main__":
    main()
