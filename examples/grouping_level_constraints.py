"""Grouping-level constraints via lazy no-good cuts (paper §VIII, item 1).

Per-group constraints cannot express requirements that couple groups —
"keep the abstraction *balanced*" or "at most one activity may contain
any expensive instance".  This example imposes such grouping-level
rules on the running example and shows the lazy-constraint loop at
work: the solver's unconstrained optimum gets rejected and cut away
until the best *conforming* grouping emerges.

Run with:  python examples/grouping_level_constraints.py
"""

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
from repro.constraints.instancebased import MaxInstanceAggregate
from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.exclusive import merge_exclusive_candidates
from repro.core.grouping_constraints import (
    MaxGroupSizeSpread,
    MaxViolatingGroups,
)
from repro.core.lazy_selection import select_with_grouping_rules
from repro.core.selection import select_optimal_grouping
from repro.datasets import running_example_log
from repro.eventlog.events import ROLE_KEY


def show_grouping(title, grouping, objective):
    print(f"{title} (dist {objective:.3f}):")
    for group in sorted(grouping, key=lambda g: sorted(g)[0]):
        print(f"  {{{', '.join(sorted(group))}}}")


def main() -> None:
    log = running_example_log()
    constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
    checker = GroupChecker(log, constraints)
    distance = DistanceFunction(log, checker.instances)
    candidates = dfg_candidates(log, constraints, checker=checker).groups
    candidates, _ = merge_exclusive_candidates(log, candidates, checker)

    plain = select_optimal_grouping(log, candidates, distance)
    show_grouping("\nunconstrained optimum (paper Fig. 7)", plain.grouping, plain.objective)
    sizes = sorted((len(g) for g in plain.grouping), reverse=True)
    print(f"group sizes: {sizes} -> spread {max(sizes) - min(sizes)}")

    # Rule 1: balanced groups (max size - min size <= 1).
    balanced = select_with_grouping_rules(
        log,
        candidates,
        distance,
        rules=[MaxGroupSizeSpread(1)],
        instance_index=checker.instances,
    )
    show_grouping(
        f"\nbalanced grouping after {balanced.cuts_added} no-good cuts",
        balanced.grouping,
        balanced.objective,
    )
    print(f"rejected along the way: {len(balanced.rejected_groupings)} groupings")

    # Rule 2: at most one group may contain a long activity instance.
    budgeted = select_with_grouping_rules(
        log,
        candidates,
        distance,
        rules=[
            MaxViolatingGroups(
                MaxInstanceAggregate("duration", "sum", 45.0), budget=1
            )
        ],
        instance_index=checker.instances,
    )
    show_grouping(
        f"\nbudgeted-violations grouping ({budgeted.cuts_added} cuts)",
        budgeted.grouping,
        budgeted.objective,
    )


if __name__ == "__main__":
    main()
