"""Compare GECCO against the paper's three baselines (§VI-C, Table VII).

On one synthetic collection log we run GECCO (DFG-based) against graph
querying (BL_Q), spectral partitioning (BL_P) and greedy merging (BL_G)
under the constraint each baseline supports, and report the paper's
measures: size reduction, complexity reduction, silhouette, runtime.

Run with:  python examples/baseline_comparison.py
"""

from repro.datasets.collection import TABLE_III_SPECS, build_log
from repro.experiments.runner import solve_problem
from repro.experiments.tables import format_table


def main() -> None:
    spec = next(spec for spec in TABLE_III_SPECS if spec.name == "bpic17")
    log = build_log(spec, max_traces=80, max_classes=14)
    print(f"log: {spec.name} (scaled to {len(log)} traces, "
          f"{len(log.classes)} classes)\n")

    comparisons = [
        # (constraint set, approaches): mirror Table VII's pairings.
        ("BL1", ["DFGinf", "BLQ"]),
        ("BL4", ["Exh", "BLP"]),
        ("A", ["DFGk", "BLG"]),
    ]
    rows = []
    for set_name, approaches in comparisons:
        for approach in approaches:
            result = solve_problem(
                log, set_name, approach, log_name=spec.name, candidate_timeout=30
            )
            rows.append(
                [
                    set_name,
                    approach,
                    "yes" if result.solved else "no",
                    result.size_red if result.solved else "-",
                    result.complexity_red if result.solved else "-",
                    result.silhouette if result.solved else "-",
                    round(result.seconds, 2),
                ]
            )
    print(
        format_table(
            ["Const.", "Approach", "Solved", "S. red.", "C. red.", "Sil.", "T(s)"],
            rows,
            title="Baseline comparison (cf. paper Table VII)",
        )
    )
    print(
        "\nNote: GECCO minimizes the *distance* objective over a superset of "
        "each baseline's candidates, so its objective is provably no worse; "
        "individual measures (S. red. / Sil.) can vary per log. The "
        "collection-level comparison in benchmarks/test_bench_table7.py "
        "shows the paper's aggregate shape."
    )


if __name__ == "__main__":
    main()
