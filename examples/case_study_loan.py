"""Case study: origin-constrained abstraction of a loan log (§VI-D).

A BPI-2017-style loan-application process records 24 event classes from
three IT systems (application handling A, offers O, workflow W).  Its
DFG is spaghetti even at an 80/20 filter (paper Fig. 1).  Constraining
groups to a single origin system (``|g.origin| <= 1``) yields a small
set of system-pure activities whose DFG exposes the inter-system flow
(paper Fig. 8).  The example also shows what happens *without* the
constraint: activities mix events from all three systems.

Run with:  python examples/case_study_loan.py
"""

from repro import Gecco, GeccoConfig, compute_dfg
from repro.constraints import (
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroupSize,
)
from repro.datasets import loan_application_log
from repro.experiments.figures import dfg_to_dot


def main() -> None:
    log = loan_application_log(num_traces=300)
    dfg = compute_dfg(log)
    print(f"input log: {log}")
    print(f"DFG edges: {len(dfg.edge_counts)}; after 80/20 filtering: "
          f"{len(dfg.filtered(0.8).edge_counts)} (still spaghetti, cf. Fig. 1)")

    constraints = ConstraintSet(
        [MaxGroupSize(8), MaxDistinctClassAttribute("origin", 1)]
    )
    config = GeccoConfig(strategy="dfg", beam_width="auto", label_attribute="origin")
    result = Gecco(constraints, config).abstract(log)

    print(f"\nwith |g.origin| <= 1: {len(result.grouping)} origin-pure activities "
          f"(paper: 7 on BPI-2017):")
    for group in sorted(result.grouping, key=lambda g: sorted(g)[0]):
        label = result.grouping.label_of(group)
        print(f"  {label:<16} {{{', '.join(sorted(group))}}}")

    abstracted_dfg = compute_dfg(result.abstracted_log)
    print(f"\nabstracted DFG: {len(abstracted_dfg.edge_counts)} edges "
          f"(80/20: {len(abstracted_dfg.filtered(0.8).edge_counts)}, cf. Fig. 8)")

    # The paper's closing observation: without constraints, activities
    # mix events from all three systems, obscuring the interrelations.
    unconstrained = Gecco(
        ConstraintSet([MaxGroupSize(8)]),
        GeccoConfig(strategy="dfg", beam_width="auto"),
    ).abstract(log)
    mixed = [
        group
        for group in unconstrained.grouping
        if len({cls.split("_", 1)[0] for cls in group}) > 1
    ]
    print(
        f"\nwithout the origin constraint: {len(unconstrained.grouping)} groups, "
        f"of which {len(mixed)} mix origin systems, e.g.:"
    )
    for group in mixed[:3]:
        print(f"  {{{', '.join(sorted(group))}}}")

    dot = dfg_to_dot(abstracted_dfg, keep_fraction=0.8, title="Fig8")
    print("\nGraphviz DOT of the abstracted 80/20 DFG (paper Fig. 8):")
    print(dot)


if __name__ == "__main__":
    main()
