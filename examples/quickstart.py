"""Quickstart: abstract the paper's running example (§II, Figs. 2/3/7).

The request-handling log of Table I has eight low-level event classes.
We impose one constraint — every high-level activity may involve only a
single role — and let GECCO find the distance-optimal grouping.  The
result is the paper's Fig. 7 grouping (dist = 3.08) and the abstracted
DFG of Fig. 3.

Run with:  python examples/quickstart.py
"""

from repro import Gecco, GeccoConfig, compute_dfg
from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
from repro.datasets import running_example_log
from repro.eventlog.events import ROLE_KEY
from repro.experiments.figures import dfg_to_ascii


def main() -> None:
    log = running_example_log()
    print(f"input log: {log}")
    print("\nDFG of the low-level log (paper Fig. 2):")
    print(dfg_to_ascii(compute_dfg(log)))

    # "Each activity comprises only events performed by the same role."
    constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])

    result = Gecco(constraints, GeccoConfig(strategy="dfg")).abstract(log)

    print(f"\noptimal grouping (distance {result.distance:.3f}, paper: 3.08):")
    for group in sorted(result.grouping, key=lambda g: sorted(g)[0]):
        label = result.grouping.label_of(group)
        print(f"  {label:<12} {{{', '.join(sorted(group))}}}")

    print("\nabstracted traces:")
    for trace, abstracted in zip(log, result.abstracted_log):
        original = ", ".join(event.event_class for event in trace)
        lifted = ", ".join(event.event_class for event in abstracted)
        print(f"  <{original}>")
        print(f"    -> <{lifted}>")

    print("\nDFG of the abstracted log (paper Fig. 3):")
    print(dfg_to_ascii(compute_dfg(result.abstracted_log)))

    print(
        f"\nsize reduction: {result.size_reduction:.2f} "
        f"({len(log.classes)} classes -> {len(result.grouping)} activities)"
    )


if __name__ == "__main__":
    main()
