"""Packaging for the GECCO reproduction.

Metadata lives here (no ``pyproject.toml``): the execution environment
ships setuptools without the ``wheel`` package, so PEP 660 editable
installs fail and ``pip install -e .`` must fall back to
``setup.py develop``.

``numpy`` backs the integer-encoded pipeline engine
(:mod:`repro.core.encoding` + :mod:`repro.core.columns`, the default
``GeccoConfig(engine="compiled")``) and ``scipy`` the HiGHS MIP
backend.  Both are declared as requirements because they are the
production fast path, but both are import-gated: without them the
pipeline degrades to the pure-Python engine and the dependency-free
branch-and-bound solver (see the ``numpy-absent-smoke`` CI job).
"""

from setuptools import find_packages, setup

setup(
    name="gecco-repro",
    version="1.2.0",
    description=(
        "Reproduction of GECCO: constraint-driven abstraction of "
        "low-level event logs (ICDE 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
