"""Packaging for the GECCO reproduction.

Metadata lives here (no ``pyproject.toml``): the execution environment
ships setuptools without the ``wheel`` package, so PEP 660 editable
installs fail and ``pip install -e .`` must fall back to
``setup.py develop``.

``numpy`` backs the integer-encoded pipeline engine
(:mod:`repro.core.encoding`, the default ``GeccoConfig(engine="compiled")``).
``scipy`` provides the default MIP solver backend (HiGHS); both are
hard requirements because importing :mod:`repro` pulls in
``repro.mip.scipy_backend`` (and numpy through it) unconditionally.
"""

from setuptools import find_packages, setup

setup(
    name="gecco-repro",
    version="1.1.0",
    description=(
        "Reproduction of GECCO: constraint-driven abstraction of "
        "low-level event logs (ICDE 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
