"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs fail; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
