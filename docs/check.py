"""Documentation hygiene checker (the CI ``docs-check`` job).

Three checks over ``docs/*.md`` and ``README.md``:

1. **dead links** — every relative markdown link (``[text](target)``)
   must point at an existing file (anchors are stripped; absolute
   ``http(s)://`` and ``mailto:`` links are not checked);
2. **runnable examples** — every fenced ```` ```python ```` block that
   contains doctest prompts (``>>>``) is executed through
   :mod:`doctest`; a drifting example fails the build;
3. **generated-page freshness** — ``docs/api.md`` must match what
   ``docs/generate_api.py`` renders from the live docstrings.

Usage::

    PYTHONPATH=src python docs/check.py
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent

#: ``[text](target)`` — good enough for our hand-written pages; code
#: spans are stripped first so ``dict[str, int](...)`` in API text
#: cannot masquerade as a link.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_FENCE = re.compile(r"^```(\w*)\s*$")


def checked_files() -> list[Path]:
    """The markdown files under the checker's remit."""
    return sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]


def _strip_fences(text: str) -> str:
    """Remove fenced code blocks (links inside code are not links)."""
    lines, keep, in_fence = text.splitlines(), [], False
    for line in lines:
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            keep.append(line)
    return "\n".join(keep)


def check_links(paths: "list[Path] | None" = None) -> list[str]:
    """Return one error per dead relative link across ``paths``."""
    errors = []
    for path in paths or checked_files():
        text = _CODE_SPAN.sub("", _strip_fences(path.read_text(encoding="utf-8")))
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure in-page anchor
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: dead link -> {target}")
    return errors


def python_examples(path: Path) -> list[tuple[int, str]]:
    """Extract ``(first_line, source)`` of doctest-style python fences."""
    blocks, current, language, start = [], None, None, 0
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        fence = _FENCE.match(line.strip())
        if fence:
            if current is None:
                language, current, start = fence.group(1).lower(), [], number + 1
            else:
                source = "\n".join(current)
                if language in ("python", "pycon", "py") and ">>>" in source:
                    blocks.append((start, source))
                current, language = None, None
            continue
        if current is not None:
            current.append(line)
    return blocks


def check_examples(paths: "list[Path] | None" = None) -> list[str]:
    """Run every doctest-style fenced python example; return failures."""
    errors = []
    runner = doctest.DocTestRunner(verbose=False, optionflags=doctest.ELLIPSIS)
    parser = doctest.DocTestParser()
    for path in paths or checked_files():
        for first_line, source in python_examples(path):
            name = f"{path.name}:{first_line}"
            test = parser.get_doctest(source, {}, name, str(path), first_line)
            output: list[str] = []
            runner.run(test, out=output.append)
            if runner.failures:
                errors.append(f"{name}: doctest failed\n{''.join(output)}")
                runner = doctest.DocTestRunner(
                    verbose=False, optionflags=doctest.ELLIPSIS
                )
    return errors


def check_api_freshness() -> list[str]:
    """``docs/api.md`` must match a fresh render from the docstrings."""
    sys.path.insert(0, str(DOCS_DIR))
    try:
        from generate_api import render_api_page
    finally:
        sys.path.pop(0)
    target = DOCS_DIR / "api.md"
    current = target.read_text(encoding="utf-8") if target.exists() else ""
    if current != render_api_page():
        return [
            "docs/api.md is stale; regenerate with "
            "`PYTHONPATH=src python docs/generate_api.py`"
        ]
    return []


def main() -> int:
    """Run all checks; print a report; exit non-zero on any failure."""
    errors = check_links() + check_examples() + check_api_freshness()
    files = checked_files()
    examples = sum(len(python_examples(path)) for path in files)
    if errors:
        for error in errors:
            print(f"FAIL {error}", file=sys.stderr)
        return 1
    print(
        f"docs ok: {len(files)} pages, links intact, "
        f"{examples} runnable examples pass, api.md fresh"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
