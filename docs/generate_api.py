"""Generate ``docs/api.md`` from the public API's docstrings.

The API reference is *generated, not written*: every documented item
below is imported, its signature taken from ``inspect.signature`` and
its text from the live docstring, so the page cannot drift from the
code without ``docs/check.py`` (and the CI ``docs-check`` job) noticing
— the checker regenerates the page in memory and diffs it against the
committed file.

Usage::

    PYTHONPATH=src python docs/generate_api.py        # rewrite docs/api.md
    PYTHONPATH=src python docs/generate_api.py --check  # exit 1 when stale
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

#: The curated public surface: ``(module, name, one-line role)`` per
#: section.  Order is presentation order in docs/api.md.
API_SECTIONS: "list[tuple[str, list[tuple[str, str, str]]]]" = [
    (
        "Pipeline",
        [
            ("repro.core.gecco", "Gecco",
             "the three-step abstraction pipeline"),
            ("repro.core.gecco", "GeccoConfig",
             "every pipeline knob, with defaults"),
            ("repro.core.gecco", "AbstractionResult",
             "what a pipeline run returns"),
            ("repro.constraints.sets", "ConstraintSet",
             "the user's constraint set R"),
        ],
    ),
    (
        "Service runtime",
        [
            ("repro.service.jobs", "AbstractionJob",
             "one content-addressed unit of servable work"),
            ("repro.service.jobs", "LogRef",
             "a resolvable, digestible reference to an event log"),
            ("repro.service.cache", "ArtifactCache",
             "the three-tier cache behind every executor"),
            ("repro.service.executor", "SequentialExecutor",
             "deterministic in-process reference executor"),
            ("repro.service.executor", "PoolExecutor",
             "one-host multiprocessing executor"),
            ("repro.service.batch", "run_batch",
             "JSONL manifest in, JSONL results out"),
            ("repro.service.batch", "load_manifest",
             "parse a JSONL job manifest"),
        ],
    ),
    (
        "Distributed backend",
        [
            ("repro.service.dist.executor", "DistributedExecutor",
             "the executor protocol over a broker queue"),
            ("repro.service.dist.broker", "connect_broker",
             "broker URL -> broker instance"),
            ("repro.service.dist.broker", "Broker",
             "the broker contract all queue backends implement"),
            ("repro.service.dist.broker", "TaskEnvelope",
             "one queued unit of work"),
            ("repro.service.dist.worker", "worker_loop",
             "the claim-and-run loop behind `repro worker`"),
        ],
    ),
    (
        "Resilience",
        [
            ("repro.service.resilience", "Deadline",
             "an absolute wall-clock budget threaded through a job"),
            ("repro.service.resilience", "RetryPolicy",
             "bounded exponential backoff with deterministic jitter"),
            ("repro.service.resilience", "AdmissionController",
             "token-bucket tenant quotas plus bounded-load shedding"),
            ("repro.service.resilience", "CircuitBreaker",
             "closed/open/half-open failure gate"),
            ("repro.service.resilience", "DegradingExecutor",
             "automatic tier degradation behind a circuit breaker"),
            ("repro.service.dist.chaos", "ChaosConfig",
             "a seeded deterministic fault schedule"),
            ("repro.service.dist.chaos", "ChaosBroker",
             "fault-injecting proxy over any broker"),
        ],
    ),
    (
        "Durability",
        [
            ("repro.service.journal", "RunJournal",
             "the crash-resumable batch journal behind `--run-dir`"),
            ("repro.service.journal", "seal",
             "embed a checksum in a JSON payload"),
            ("repro.service.journal", "verify_seal",
             "verify and strip an embedded checksum"),
            ("repro.service.fsck", "fsck_store",
             "offline disk-store verify/repair"),
            ("repro.service.fsck", "fsck_broker",
             "offline fs-broker verify/repair"),
            ("repro.service.supervisor", "FleetSupervisor",
             "restart, quarantine, and drain a local worker fleet"),
            ("repro.service.dist.chaos", "DiskFaultInjector",
             "seeded ENOSPC and torn-write injection for disk stores"),
        ],
    ),
    (
        "Observability",
        [
            ("repro.obs.trace", "TraceWriter",
             "crash-safe line-atomic JSONL lifecycle tracing"),
            ("repro.obs.trace", "read_trace",
             "parse a trace file, skipping torn lines"),
            ("repro.obs.trace", "merge_traces",
             "reassemble per-process traces into one timeline"),
            ("repro.obs.metrics", "MetricsRegistry",
             "counters, gauges, histograms; Prometheus text out"),
            ("repro.obs.metrics", "MetricsServer",
             "the `/metrics` HTTP endpoint behind `--metrics-port`"),
            ("repro.obs.doctor", "analyze_trace",
             "trace events in, forensic report out"),
            ("repro.obs.doctor", "render_report",
             "the human rendering behind `repro doctor`"),
        ],
    ),
]

_HEADER = """\
# API reference

*Generated from docstrings by `docs/generate_api.py` — do not edit by
hand; run `PYTHONPATH=src python docs/generate_api.py` after changing a
docstring.  The CI `docs-check` job fails when this page is stale.*

The architecture behind these classes is described in
[architecture.md](architecture.md); day-2 operation of the runtime in
[operations.md](operations.md).
"""


def _signature_of(item) -> str:
    """Best-effort signature text (classes sign their ``__init__``)."""
    try:
        return str(inspect.signature(item))
    except (TypeError, ValueError):
        return "(...)"


def _item_markdown(module_name: str, name: str, role: str) -> str:
    """Render one documented item (and a class's public methods)."""
    module = importlib.import_module(module_name)
    item = getattr(module, name)
    lines = [f"### `{name}` — {role}", ""]
    lines.append(f"`{module_name}.{name}{_signature_of(item)}`")
    lines.append("")
    doc = inspect.getdoc(item) or "(undocumented)"
    lines.append("```text")
    lines.append(doc)
    lines.append("```")
    if inspect.isclass(item):
        methods = [
            (method_name, method)
            for method_name, method in vars(item).items()
            if not method_name.startswith("_") and inspect.isfunction(method)
        ]
        for method_name, method in methods:
            summary = (inspect.getdoc(method) or "").strip().splitlines()
            first_line = summary[0] if summary else "(undocumented)"
            lines.append(
                f"- **`.{method_name}{_signature_of(method)}`** — {first_line}"
            )
        properties = [
            (prop_name, prop)
            for prop_name, prop in vars(item).items()
            if not prop_name.startswith("_") and isinstance(prop, property)
        ]
        for prop_name, prop in properties:
            summary = (inspect.getdoc(prop.fget) or "").strip().splitlines()
            first_line = summary[0] if summary else "(undocumented)"
            lines.append(f"- **`.{prop_name}`** (property) — {first_line}")
    lines.append("")
    return "\n".join(lines)


def render_api_page() -> str:
    """Build the whole docs/api.md content as a string."""
    parts = [_HEADER]
    for section, items in API_SECTIONS:
        parts.append(f"## {section}\n")
        for module_name, name, role in items:
            parts.append(_item_markdown(module_name, name, role))
    return "\n".join(parts)


def main(argv: "list[str] | None" = None) -> int:
    """Write (or with ``--check`` verify) ``docs/api.md``."""
    argv = sys.argv[1:] if argv is None else argv
    target = Path(__file__).resolve().parent / "api.md"
    fresh = render_api_page()
    if "--check" in argv:
        current = target.read_text(encoding="utf-8") if target.exists() else ""
        if current != fresh:
            print(
                "docs/api.md is stale; regenerate with "
                "`PYTHONPATH=src python docs/generate_api.py`",
                file=sys.stderr,
            )
            return 1
        print("docs/api.md is up to date")
        return 0
    target.write_text(fresh, encoding="utf-8")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
