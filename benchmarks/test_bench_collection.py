"""Table III: properties of the log collection (paper §VI-A).

Regenerates the collection-statistics table on the synthetic logs and
benchmarks log generation itself.  The paper's column values (from the
original 4TU logs) are printed alongside for comparison; trace counts
are capped in the benchmark configuration, so the |CL| column is the
one expected to track the paper.
"""

from conftest import MAX_CLASSES, MAX_TRACES, write_result

from repro.datasets.collection import TABLE_III_SPECS, build_log
from repro.experiments.tables import format_table, table3


def test_table3_statistics(collection, full_width_collection, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rendered = table3(full_width_collection)
    paper_rows = [
        [spec.reference, spec.name, spec.num_classes,
         spec.num_traces, spec.paper_variants, spec.paper_avg_length]
        for spec in TABLE_III_SPECS
    ]
    paper = format_table(
        ["Ref", "Log", "|CL|", "Traces", "Variants", "Avg |s|"],
        paper_rows,
        title="Paper Table III (original 4TU logs, for reference)",
    )
    artifact = (
        rendered
        + f"\n(traces capped at {MAX_TRACES} for the benchmark scale)\n\n"
        + paper
    )
    write_result("table3.txt", artifact)
    print("\n" + artifact)

    # Shape assertions: class counts match the specs at full width.
    for spec in TABLE_III_SPECS:
        log = full_width_collection[spec.name]
        assert len(log.classes) <= spec.num_classes
        assert len(log.classes) >= spec.num_classes * 0.8


def test_bench_log_generation(benchmark):
    spec = next(spec for spec in TABLE_III_SPECS if spec.name == "bpic17")
    log = benchmark(build_log, spec, MAX_TRACES, MAX_CLASSES)
    assert len(log) == MAX_TRACES
