"""Microbenchmarks of GECCO's building blocks (pytest-benchmark).

These quantify where time goes inside the pipeline — the paper's
observation that Step 2 (MIP) "only contributes marginally to the
overall runtime" is checked here explicitly.
"""

import pytest

from repro.core.candidates import exhaustive_candidates
from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.instances import InstanceIndex, instances_in_log
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.statistics import describe
from repro.experiments.configs import constraint_set_for_log
from repro.measures.positional import positional_distance_matrix


@pytest.fixture(scope="module")
def bench_log(collection):
    return collection["bpic12"]


def test_bench_dfg_computation(bench_log, benchmark):
    dfg = benchmark(compute_dfg, bench_log)
    assert dfg.nodes == bench_log.classes


def test_bench_statistics(bench_log, benchmark):
    stats = benchmark(describe, bench_log)
    assert stats.num_traces == len(bench_log)


def test_bench_instance_detection(bench_log, benchmark):
    group = frozenset(sorted(bench_log.classes)[:4])
    instances = benchmark(instances_in_log, bench_log, group)
    assert isinstance(instances, list)


def test_bench_distance_function(bench_log, benchmark):
    group = frozenset(sorted(bench_log.classes)[:4])

    def evaluate():
        # Fresh function per round: measure uncached evaluation.
        return DistanceFunction(bench_log, InstanceIndex(bench_log)).group_distance(group)

    value = benchmark(evaluate)
    assert value >= 0


def test_bench_exhaustive_candidates(bench_log, benchmark):
    constraints = constraint_set_for_log("BL1", bench_log)
    result = benchmark.pedantic(
        exhaustive_candidates,
        args=(bench_log, constraints),
        kwargs={"timeout": 30.0},
        rounds=2,
        iterations=1,
    )
    assert len(result.groups) > 0


def test_bench_dfg_candidates(bench_log, benchmark):
    constraints = constraint_set_for_log("BL1", bench_log)
    result = benchmark.pedantic(
        dfg_candidates,
        args=(bench_log, constraints),
        rounds=3,
        iterations=1,
    )
    assert len(result.groups) > 0


def test_bench_positional_matrix(bench_log, benchmark):
    classes, matrix = benchmark(positional_distance_matrix, bench_log)
    assert matrix.shape == (len(classes), len(classes))


def test_step2_is_marginal(bench_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Paper §V-C: the MIP step contributes marginally to total runtime."""
    from repro.core.gecco import Gecco, GeccoConfig

    constraints = constraint_set_for_log("BL1", bench_log)
    result = Gecco(constraints, GeccoConfig(strategy="dfg")).abstract(bench_log)
    assert result.feasible
    assert result.timings.selection <= max(0.5, result.timings.total * 0.5)
