"""Extension benchmark: model quality before vs. after abstraction.

Quantifies the paper's §I motivation — *"process discovery algorithms
also yield more structured models"* after abstraction — across all
three discovery substrates: the DFG-filtering miner (CFC), the alpha
miner (net size + replay fitness) and the inductive miner (tree size).
"""

from conftest import write_result

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
from repro.core.gecco import Gecco, GeccoConfig
from repro.datasets.loan_process import loan_application_log
from repro.eventlog.events import ROLE_KEY
from repro.experiments.tables import format_table
from repro.mining.alpha import alpha_miner
from repro.mining.complexity import control_flow_complexity
from repro.mining.discovery import discover_model
from repro.mining.inductive import inductive_miner, tree_size
from repro.mining.petri import token_replay


def _model_row(label, log):
    dfg_model = discover_model(log)
    net = alpha_miner(log)
    replay = token_replay(net, log)
    tree = inductive_miner(log)
    return [
        label,
        control_flow_complexity(dfg_model),
        net.size,
        round(replay.fitness, 3),
        tree_size(tree),
    ]


def test_model_quality_running_example(running_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
    result = Gecco(constraints, GeccoConfig(strategy="dfg")).abstract(running_log)
    rows = [
        _model_row("original", running_log),
        _model_row("abstracted", result.abstracted_log),
    ]
    rendered = format_table(
        ["log", "CFC", "alpha net size", "alpha fitness", "IM tree size"],
        rows,
        title="Model quality before/after abstraction (running example)",
    )
    write_result("model_quality_running.txt", rendered)
    print("\n" + rendered)
    original, abstracted = rows
    assert abstracted[1] <= original[1]  # CFC
    assert abstracted[2] < original[2]   # alpha net size
    assert abstracted[4] < original[4]   # inductive tree size


def test_model_quality_case_study(benchmark):
    log = loan_application_log(num_traces=150)
    constraints = ConstraintSet([MaxDistinctClassAttribute("origin", 1)])
    config = GeccoConfig(strategy="dfg", beam_width="auto")
    result = benchmark.pedantic(
        Gecco(constraints, config).abstract, args=(log,), rounds=1, iterations=1
    )
    assert result.feasible
    rows = [
        _model_row("original", log),
        _model_row("abstracted", result.abstracted_log),
    ]
    rendered = format_table(
        ["log", "CFC", "alpha net size", "alpha fitness", "IM tree size"],
        rows,
        title="Model quality before/after abstraction (loan case study)",
    )
    write_result("model_quality_case_study.txt", rendered)
    print("\n" + rendered)
    original, abstracted = rows
    assert abstracted[1] <= original[1]
    assert abstracted[4] <= original[4]
