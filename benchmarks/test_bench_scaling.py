"""Scaling behavior: runtime vs. log width and length (§V-B complexity).

The paper analyzes worst-case complexity (Alg. 1 exponential in |C_L|,
Alg. 2 bounded by ``k * |C_L|^2``).  These benches measure the actual
growth on synthetic logs: candidate-computation time as the class
count and the trace count grow, for the exhaustive and the DFG-based
instantiations.
"""

import time

from conftest import write_result

from repro.core.candidates import exhaustive_candidates
from repro.core.dfg_candidates import default_beam_width, dfg_candidates
from repro.datasets.attributes import enrich_log
from repro.datasets.playout import playout
from repro.datasets.process_tree import TreeSpec, random_tree
from repro.experiments.configs import constraint_set_for_log
from repro.experiments.tables import format_table


def _make_log(num_classes: int, num_traces: int, seed: int = 42):
    tree = random_tree(TreeSpec(num_activities=num_classes), seed=seed)
    return enrich_log(playout(tree, num_traces, seed=seed), seed=seed)


def test_scaling_with_classes(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for num_classes in (6, 8, 10, 12, 14):
        log = _make_log(num_classes, 40)
        constraints = constraint_set_for_log("BL1", log)

        started = time.perf_counter()
        exhaustive = exhaustive_candidates(log, constraints, timeout=60)
        exhaustive_seconds = time.perf_counter() - started

        started = time.perf_counter()
        beamed = dfg_candidates(
            log, constraints, beam_width=default_beam_width(log)
        )
        beamed_seconds = time.perf_counter() - started

        rows.append(
            [
                num_classes,
                len(exhaustive.groups),
                round(exhaustive_seconds, 3),
                len(beamed.groups),
                round(beamed_seconds, 3),
            ]
        )
    rendered = format_table(
        ["|CL|", "Exh cands", "Exh T(s)", "DFGk cands", "DFGk T(s)"],
        rows,
        title="Scaling with the number of event classes (40 traces)",
    )
    write_result("scaling_classes.txt", rendered)
    print("\n" + rendered)

    # The DFG-based approach must scale gentler than the exhaustive one
    # at the widest point.
    assert rows[-1][4] <= rows[-1][2] + 0.5


def test_scaling_with_traces(benchmark):
    rows = []
    for num_traces in (25, 50, 100, 200):
        log = _make_log(10, num_traces)
        constraints = constraint_set_for_log("A", log)
        started = time.perf_counter()
        result = dfg_candidates(
            log, constraints, beam_width=default_beam_width(log)
        )
        seconds = time.perf_counter() - started
        rows.append([num_traces, len(result.groups), round(seconds, 3)])
    rendered = format_table(
        ["traces", "DFGk cands", "T(s)"],
        rows,
        title="Scaling with the number of traces (10 classes, set A)",
    )
    write_result("scaling_traces.txt", rendered)
    print("\n" + rendered)

    log = _make_log(10, 50)
    constraints = constraint_set_for_log("A", log)
    benchmark.pedantic(
        dfg_candidates,
        args=(log, constraints),
        kwargs={"beam_width": default_beam_width(log)},
        rounds=3,
        iterations=1,
    )
