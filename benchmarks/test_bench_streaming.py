"""Extension benchmark: online abstraction on a drifting stream.

Measures the streaming layer (paper §VIII future work, implemented in
:mod:`repro.streaming`): per-trace processing throughput, and how the
drift detector concentrates expensive re-groupings around the actual
concept drift instead of re-solving per trace.
"""

import random

from conftest import write_result

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
from repro.core.gecco import GeccoConfig
from repro.eventlog.events import ROLE_KEY, Event, Trace
from repro.experiments.tables import format_table
from repro.streaming import StreamingAbstractor

ROLES = {
    "receive": "clerk", "check": "clerk", "approve": "manager",
    "reject": "manager", "notify": "clerk", "archive": "clerk",
    "audit": "auditor", "audit_report": "auditor",
}


def _trace(rng: random.Random, drifted: bool) -> Trace:
    classes = ["receive", "check"]
    if drifted:
        classes += ["audit", "audit_report"]
    classes.append("approve" if rng.random() < 0.7 else "reject")
    classes += ["notify", "archive"]
    return Trace([Event(cls, {ROLE_KEY: ROLES[cls]}) for cls in classes])


def _build_stream(total: int, drift_at: int, seed: int = 11) -> list[Trace]:
    rng = random.Random(seed)
    return [_trace(rng, drifted=index >= drift_at) for index in range(total)]


def test_streaming_drift_concentrates_regroupings(benchmark):
    stream = _build_stream(total=200, drift_at=100)
    abstractor = StreamingAbstractor(
        ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)]),
        GeccoConfig(strategy="dfg"),
        window_size=80,
        min_traces=10,
        check_every=5,
        drift_threshold=0.15,
    )

    def run():
        for trace in stream:
            abstractor.process(trace)
        return abstractor

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.stats
    rows = [
        ["traces processed", stats.traces_processed],
        ["drift checks", stats.drift_checks],
        ["re-groupings", stats.regroupings],
        ["epochs", len(result.epochs)],
        ["final |G|", len(result.grouping)],
    ]
    rendered = format_table(
        ["metric", "value"],
        rows,
        title="Streaming abstraction on a drifting stream (drift at trace 100)",
    )
    write_result("streaming_drift.txt", rendered)
    print("\n" + rendered)

    # Re-groupings are rare relative to the stream length...
    assert stats.regroupings <= stats.traces_processed / 10
    # ... and the post-drift grouping covers the new audit classes.
    final_classes = {cls for group in result.grouping for cls in group}
    assert {"audit", "audit_report"} <= final_classes


def test_bench_streaming_throughput(benchmark):
    stream = _build_stream(total=60, drift_at=1_000)  # no drift
    abstractor = StreamingAbstractor(
        ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)]),
        GeccoConfig(strategy="dfg"),
        window_size=50,
        min_traces=10,
        check_every=10,
    )
    for trace in stream:
        abstractor.process(trace)  # warm up: grouping established

    probe = stream[0]
    benchmark(abstractor.process, probe)
