"""Ablation: the distance function behind the abstraction objective.

§IV-B claims GECCO is largely independent of the concrete distance
function.  This bench swaps Eq. 1 for the alternatives in
:mod:`repro.core.alt_distance` and compares the groupings selected on
the running example and a collection log, reporting size reduction and
silhouette per objective.
"""

from conftest import write_result

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
from repro.core.gecco import Gecco, GeccoConfig
from repro.eventlog.events import ROLE_KEY
from repro.experiments.configs import constraint_set_for_log
from repro.experiments.tables import format_table
from repro.measures.silhouette import silhouette_coefficient

DISTANCES = ("eq1", "frequency", "jaccard", "entropy")


def _compare(log, constraints):
    rows = []
    for name in DISTANCES:
        result = Gecco(
            constraints, GeccoConfig(strategy="dfg", distance=name)
        ).abstract(log)
        if result.feasible:
            rows.append(
                [
                    name,
                    len(result.grouping),
                    round(result.distance, 3),
                    round(silhouette_coefficient(log, result.grouping), 3),
                ]
            )
        else:
            rows.append([name, "-", "-", "-"])
    return rows


def test_alt_distance_on_running_example(running_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
    rows = _compare(running_log, constraints)
    rendered = format_table(
        ["distance", "|G|", "objective", "Sil."],
        rows,
        title="Ablation: distance functions (running example)",
    )
    write_result("ablation_distance_running.txt", rendered)
    print("\n" + rendered)
    # All objectives must produce a feasible grouping.
    assert all(row[1] != "-" for row in rows)


def test_alt_distance_on_collection_log(collection, benchmark):
    log = collection["bpic12"]
    constraints = constraint_set_for_log("BL1", log)
    rows = _compare(log, constraints)
    rendered = format_table(
        ["distance", "|G|", "objective", "Sil."],
        rows,
        title="Ablation: distance functions (bpic12, BL1)",
    )
    write_result("ablation_distance_collection.txt", rendered)
    print("\n" + rendered)
    assert all(row[1] != "-" for row in rows)

    benchmark.pedantic(
        Gecco(constraints, GeccoConfig(strategy="dfg", distance="jaccard")).abstract,
        args=(log,),
        rounds=2,
        iterations=1,
    )
