"""Table VI: Exh vs DFG-inf vs DFG-k (paper §VI-B).

Runs the three GECCO configurations over the six GECCO constraint sets
(A, M, N, Gr, C1, C2) on the scaled collection.  Shape to check
against the paper:

* the configurations solve (nearly) the same problems,
* DFG-inf's reductions stay close to Exh (within a few percent),
* DFG-k is the fastest and may trade a little abstraction quality,
* Exh is the slowest.
"""

import pytest

from conftest import write_result

from repro.experiments.configs import GECCO_SET_NAMES
from repro.experiments.runner import run_experiment
from repro.experiments.tables import format_table, table6

#: Paper Table VI values (Solved, S.red, C.red, Sil., T(m)).
PAPER_TABLE6 = {
    "Exh": (0.78, 0.63, 0.57, 0.11, 130),
    "DFG inf": (0.78, 0.62, 0.56, 0.16, 108),
    "DFG k": (0.77, 0.56, 0.50, 0.08, 49),
}


@pytest.fixture(scope="module")
def report(collection):
    return run_experiment(
        collection,
        GECCO_SET_NAMES,
        ["Exh", "DFGinf", "DFGk"],
        candidate_timeout=20.0,
    )


def test_table6(report, benchmark):
    rows, rendered = table6(report)
    paper = format_table(
        ["Conf.", "Solved", "S. red.", "C. red.", "Sil.", "T(m)"],
        [[name, *values] for name, values in PAPER_TABLE6.items()],
        title="Paper Table VI (original logs, for reference)",
    )
    artifact = rendered + "\n\n" + paper
    write_result("table6.txt", artifact)
    print("\n" + artifact)

    by_conf = {row["Conf."]: row for row in rows}
    exh, dfg_inf, dfg_k = by_conf["Exh"], by_conf["DFG inf"], by_conf["DFG k"]

    # The configurations solve (nearly) the same problems.
    assert abs(exh["Solved"] - dfg_inf["Solved"]) <= 0.15
    # DFG-inf stays close to Exh on abstraction degree.
    assert dfg_inf["S. red."] >= exh["S. red."] - 0.12
    # Exh never loses to the heuristics on solved-problem quality
    # (it optimizes over a superset of candidates).
    assert exh["S. red."] >= dfg_k["S. red."] - 0.05

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_dfg_candidates_speedup(collection, benchmark):
    """Microbenchmark behind Table VI: Alg. 2 with the adaptive beam."""
    from repro.constraints import ConstraintSet
    from repro.core.dfg_candidates import default_beam_width, dfg_candidates
    from repro.experiments.configs import constraint_set_for_log

    log = collection["bpic17"]
    constraints = constraint_set_for_log("A", log)
    result = benchmark.pedantic(
        dfg_candidates,
        args=(log, constraints),
        kwargs={"beam_width": default_beam_width(log)},
        rounds=3,
        iterations=1,
    )
    assert len(result.groups) > 0
