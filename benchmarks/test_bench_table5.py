"""Table V: Exh results per constraint set (paper §VI-B).

Runs the exhaustive configuration over all ten Table IV constraint sets
on the scaled collection and prints Solved / S.red / C.red / Sil. / T
next to the paper's values.  Absolute numbers differ (synthetic logs,
scaled trace counts, different hardware); the *shape* to check:

* anti-monotonic and baseline sets (A, Gr, BL1-4) solve everywhere,
* the monotonic M set and the combinations C1/C2 solve the fewest
  problems (M's per-instance duration floor is highly restrictive),
* solved problems show substantial size and complexity reductions with
  positive silhouettes.
"""

import pytest

from conftest import write_result

from repro.experiments.configs import ALL_SET_NAMES
from repro.experiments.runner import run_experiment
from repro.experiments.tables import format_table, table5

#: Paper Table V values, for side-by-side printing.
PAPER_TABLE5 = {
    "A": (1.00, 0.68, 0.63, 0.15),
    "M": (0.31, 0.58, 0.55, 0.15),
    "N": (0.77, 0.68, 0.65, 0.12),
    "Gr": (1.00, 0.66, 0.61, 0.13),
    "C1": (0.54, 0.68, 0.59, 0.12),
    "C2": (0.23, 0.50, 0.40, 0.09),
    "BL1": (1.00, 0.67, 0.61, 0.12),
    "BL2": (1.00, 0.66, 0.61, 0.12),
    "BL3": (1.00, 0.38, 0.29, -0.02),
    "BL4": (1.00, 0.51, 0.46, 0.05),
}


@pytest.fixture(scope="module")
def report(collection):
    return run_experiment(
        collection, ALL_SET_NAMES, ["Exh"], candidate_timeout=20.0
    )


def test_table5(report, benchmark):
    rows, rendered = table5(report, approach="Exh")
    paper = format_table(
        ["Const.", "Solved", "S. red.", "C. red.", "Sil."],
        [[name, *values] for name, values in PAPER_TABLE5.items()],
        title="Paper Table V (original logs, for reference)",
    )
    artifact = rendered + "\n\n" + paper
    write_result("table5.txt", artifact)
    print("\n" + artifact)

    by_set = {row["Const."]: row for row in rows}
    # Shape: the easy sets all solve...
    for name in ("A", "BL1", "BL2"):
        assert by_set[name]["Solved"] >= 0.9
    # ... the monotonic set is the most restrictive GECCO set ...
    assert by_set["M"]["Solved"] <= by_set["A"]["Solved"]
    assert by_set["C2"]["Solved"] <= by_set["C1"]["Solved"] + 1e-9
    # ... and solved problems achieve real abstraction.
    for name, row in by_set.items():
        if row["Solved"] > 0:
            assert row["S. red."] > 0.15, name

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_single_exhaustive_problem(collection, benchmark):
    """Microbenchmark: one Exh abstraction problem end to end."""
    from repro.experiments.runner import solve_problem

    log = collection["road_fines"]
    result = benchmark.pedantic(
        solve_problem,
        args=(log, "A", "Exh"),
        kwargs={"log_name": "road_fines", "candidate_timeout": 20.0},
        rounds=2,
        iterations=1,
    )
    assert result.solved
