"""Ablations of GECCO's design choices (DESIGN.md §6).

Not a paper table — these benches quantify the knobs the paper
motivates qualitatively:

* beam width k: candidate count and quality vs. runtime (behind DFGk),
* exclusive-candidate merging on/off (behind Alg. 3),
* Step-2 backend: HiGHS vs. own branch-and-bound,
* instance-splitting policy: repeat-split vs. none.
"""

import time

import pytest

from conftest import write_result

from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.exclusive import merge_exclusive_candidates
from repro.core.gecco import Gecco, GeccoConfig
from repro.core.instances import InstanceIndex
from repro.core.selection import select_optimal_grouping
from repro.experiments.configs import constraint_set_for_log
from repro.experiments.tables import format_table


@pytest.fixture(scope="module")
def ablation_log(collection):
    return collection["bpic17"]


@pytest.fixture(scope="module")
def ablation_constraints(ablation_log):
    return constraint_set_for_log("A", ablation_log)


def test_beam_width_sweep(ablation_log, ablation_constraints, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for k in (5, 10, 25, 50, 100, None):
        started = time.perf_counter()
        gecco = Gecco(
            ablation_constraints,
            GeccoConfig(strategy="dfg", beam_width=k),
        )
        result = gecco.abstract(ablation_log)
        elapsed = time.perf_counter() - started
        rows.append(
            [
                "inf" if k is None else k,
                result.num_candidates,
                len(result.grouping) if result.feasible else "-",
                round(result.distance, 3) if result.feasible else "-",
                round(elapsed, 3),
            ]
        )
    rendered = format_table(
        ["k", "candidates", "|G|", "dist", "T(s)"],
        rows,
        title="Ablation: beam width (DFG-based candidates)",
    )
    write_result("ablation_beam_width.txt", rendered)
    print("\n" + rendered)

    # Wider beams can only improve (or match) the achieved distance.
    distances = [row[3] for row in rows if row[3] != "-"]
    assert distances == sorted(distances, reverse=True) or len(set(distances)) <= 2


def test_exclusive_merging_ablation(running_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
    from repro.eventlog.events import ROLE_KEY

    constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
    with_merge = Gecco(
        constraints, GeccoConfig(exclusive_merging=True)
    ).abstract(running_log)
    without = Gecco(
        constraints, GeccoConfig(exclusive_merging=False)
    ).abstract(running_log)
    rendered = format_table(
        ["exclusive merging", "candidates", "|G|", "dist"],
        [
            ["on", with_merge.num_candidates, len(with_merge.grouping),
             round(with_merge.distance, 3)],
            ["off", without.num_candidates, len(without.grouping),
             round(without.distance, 3)],
        ],
        title="Ablation: Alg. 3 exclusive-candidate merging (running example)",
    )
    write_result("ablation_exclusive.txt", rendered)
    print("\n" + rendered)
    assert with_merge.distance <= without.distance


def test_solver_backend_ablation(ablation_log, ablation_constraints, benchmark):
    checker = GroupChecker(ablation_log, ablation_constraints)
    distance = DistanceFunction(ablation_log, checker.instances)
    candidates = dfg_candidates(
        ablation_log, ablation_constraints, checker=checker
    ).groups
    candidates, _ = merge_exclusive_candidates(ablation_log, candidates, checker)

    results = {}
    timings = {}
    for backend in ("scipy", "bnb"):
        started = time.perf_counter()
        results[backend] = select_optimal_grouping(
            ablation_log, candidates, distance, backend=backend
        )
        timings[backend] = time.perf_counter() - started
    rendered = format_table(
        ["backend", "objective", "T(s)"],
        [
            [backend, round(results[backend].objective, 4), round(timings[backend], 3)]
            for backend in ("scipy", "bnb")
        ],
        title=f"Ablation: Step-2 backend ({len(candidates)} candidates)",
    )
    write_result("ablation_solver.txt", rendered)
    print("\n" + rendered)
    assert results["scipy"].objective == pytest.approx(
        results["bnb"].objective, abs=1e-6
    )

    benchmark(
        select_optimal_grouping, ablation_log, candidates, distance, backend="scipy"
    )


def test_instance_policy_ablation(running_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for policy in ("repeat", "none"):
        index = InstanceIndex(running_log, policy=policy)
        count = index.count(frozenset({"rcp", "ckc", "ckt"}))
        distance = DistanceFunction(running_log, index)
        dist = distance.group_distance({"rcp", "ckc", "ckt"})
        rows.append([policy, count, round(dist, 4)])
    rendered = format_table(
        ["policy", "|inst(L, g_clrk1)|", "dist(g_clrk1)"],
        rows,
        title="Ablation: instance-splitting policy (running example)",
    )
    write_result("ablation_instance_policy.txt", rendered)
    print("\n" + rendered)
    by_policy = {row[0]: row for row in rows}
    # Repeat-split detects the recurring behavior in sigma_4: 5 instances;
    # without splitting the projection is one instance per trace: 4.
    assert by_policy["repeat"][1] == 5
    assert by_policy["none"][1] == 4
