"""Figures 2, 3, 5, 6 and 7: running-example artifacts.

Regenerates every running-example figure of the paper and pins the
worked numbers (Fig. 7's dist = 3.08).  DOT artifacts land in
benchmarks/results/.
"""

import pytest

from conftest import write_result

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.exclusive import merge_exclusive_candidates
from repro.core.gecco import Gecco, GeccoConfig
from repro.datasets.running_example import PAPER_OPTIMAL_GROUPS
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import ROLE_KEY
from repro.experiments.figures import (
    bipartite_to_dot,
    dfg_to_dot,
    dot_with_alternatives,
)


@pytest.fixture(scope="module")
def role_constraints():
    return ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])


def test_fig2_low_level_dfg(running_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    dot = dfg_to_dot(compute_dfg(running_log), title="Fig2")
    write_result("fig2_running_example_dfg.dot", dot)
    assert '"rej" -> "rcp"' in dot  # the loop back


def test_fig3_abstracted_dfg(running_log, role_constraints, benchmark):
    result = benchmark.pedantic(
        Gecco(role_constraints, GeccoConfig()).abstract,
        args=(running_log,),
        rounds=2,
        iterations=1,
    )
    dot = dfg_to_dot(compute_dfg(result.abstracted_log), title="Fig3")
    write_result("fig3_abstracted_dfg.dot", dot)
    assert result.distance == pytest.approx(3.0833333, abs=1e-6)


def test_fig5_candidate_iterations(running_log, role_constraints, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Fig. 5's narrative, as candidate-set facts."""
    result = dfg_candidates(running_log, role_constraints)
    narrative = [
        "Fig. 5 (DFG-based candidate computation on the running example):",
        f"  candidates found: {len(result.groups)}",
        f"  iterations: {result.stats.iterations}",
        "  length-2 clerk paths found: [prio,inf], [prio,arv], [inf,arv]",
        "  violating path skipped: [acc,inf] (different roles)",
        "  distant pair never checked: {rcp, arv}",
    ]
    text = "\n".join(narrative)
    write_result("fig5_candidates.txt", text)
    print("\n" + text)
    assert frozenset({"prio", "inf", "arv"}) in result.groups
    assert frozenset({"rcp", "arv"}) not in result.groups
    assert frozenset({"acc", "inf"}) not in result.groups


def test_fig6_behavioral_alternatives(running_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    dfg = compute_dfg(running_log)
    singletons = [frozenset({cls}) for cls in running_log.classes]
    assert dfg.equal_pre_post(frozenset({"ckc"}), singletons) == [frozenset({"ckt"})]
    dot = dot_with_alternatives(
        dfg,
        alternatives=[frozenset({"ckc", "ckt"})],
        exclusives=[frozenset({"acc", "rej"})],
        title="Fig6",
    )
    write_result("fig6_alternatives.dot", dot)
    assert "color=blue" in dot and "color=red" in dot


def test_fig7_bipartite_optimum(running_log, role_constraints, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    checker = GroupChecker(running_log, role_constraints)
    distance = DistanceFunction(running_log, checker.instances)
    candidates = dfg_candidates(running_log, role_constraints, checker=checker).groups
    candidates, _ = merge_exclusive_candidates(running_log, candidates, checker)

    distances = {group: distance.group_distance(group) for group in candidates}
    dot = bipartite_to_dot(
        candidates,
        selected=PAPER_OPTIMAL_GROUPS,
        distances=distances,
        title="Fig7",
    )
    write_result("fig7_bipartite.dot", dot)

    total = sum(distances[frozenset(group)] for group in PAPER_OPTIMAL_GROUPS)
    print(f"\nFig. 7 optimal grouping distance: {total:.4f} (paper: 3.08)")
    assert total == pytest.approx(3.0833333, abs=1e-6)
    # The paper's Fig. 7 candidate inventory (DFG-based + exclusive merge).
    for group in [
        {"rcp", "ckt", "ckc"}, {"prio", "inf", "arv"}, {"ckt", "ckc"},
        {"inf", "arv"}, {"prio", "inf"}, {"prio", "arv"},
        {"rcp", "ckc"}, {"rcp", "ckt"},
    ]:
        assert frozenset(group) in candidates, group
