"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation on the scaled synthetic collection (the paper's testbed ran
single problems for hours; the scaled runs keep the harness
laptop-sized while preserving the comparisons' *shape*).  Each bench
writes its rendered artifact into ``benchmarks/results/`` so that
EXPERIMENTS.md can reference the measured numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets.collection import build_collection  # noqa: E402
from repro.datasets.loan_process import loan_application_log  # noqa: E402
from repro.datasets.running_example import running_example_log  # noqa: E402

#: Scale of the benchmark collection (see module docstring).
MAX_TRACES = 50
MAX_CLASSES = 10

RESULTS_DIR = Path(__file__).parent / "results"


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark's timer.

    Table/figure regeneration is deterministic and often expensive, so
    one round is enough; routing it through ``benchmark`` keeps every
    artifact-producing test alive under ``--benchmark-only``.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def write_result(name: str, text: str) -> Path:
    """Persist a rendered benchmark artifact under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def collection():
    """The scaled 13-log synthetic collection."""
    return build_collection(max_traces=MAX_TRACES, max_classes=MAX_CLASSES)


@pytest.fixture(scope="session")
def full_width_collection():
    """The collection with original class counts (traces still capped)."""
    return build_collection(max_traces=MAX_TRACES, max_classes=None)


@pytest.fixture(scope="session")
def loan_log():
    """The case-study loan log."""
    return loan_application_log(num_traces=300)


@pytest.fixture(scope="session")
def running_log():
    """The paper's running example."""
    return running_example_log()
