"""Table VII: baseline comparison (paper §VI-C).

Reproduces the paper's three pairings on the scaled collection:

* BL1–BL3 (class-based sets): GECCO DFG-inf vs. graph querying (BL_Q);
* BL4 (strict grouping): GECCO Exh vs. spectral partitioning (BL_P);
* A, M, N (instance-based sets): GECCO DFG-k vs. greedy merging (BL_G).

Shape to check: GECCO matches or beats each baseline on S.red / C.red /
Sil. over its applicable sets; BL_G solves fewer problems and lands far
from the optimum; BL_P is fast but less cohesive.
"""

import pytest

from conftest import write_result

from repro.experiments.runner import run_experiment
from repro.experiments.tables import format_table, table7

#: Paper Table VII values (Solved, S.red, C.red, Sil., T(m)).
PAPER_TABLE7 = [
    ("BL[1-3]", "DFG inf", 1.00, 0.63, 0.55, 0.17, 77),
    ("BL[1-3]", "BL Q", 0.96, 0.55, 0.43, -0.20, 24),
    ("BL4", "Exh", 1.00, 0.51, 0.46, 0.05, 147),
    ("BL4", "BL P", 1.00, 0.51, 0.42, 0.01, 1),
    ("A,M,N", "DFG k", 0.67, 0.59, 0.52, 0.08, 58),
    ("A,M,N", "BL G", 0.64, 0.45, 0.37, 0.02, 24),
]


@pytest.fixture(scope="module")
def report(collection):
    rows = run_experiment(
        collection, ["BL1", "BL2", "BL3"], ["DFGinf", "BLQ"], candidate_timeout=20.0
    )
    rows.rows.extend(
        run_experiment(collection, ["BL4"], ["Exh", "BLP"], candidate_timeout=20.0).rows
    )
    rows.rows.extend(
        run_experiment(
            collection, ["A", "M", "N"], ["DFGk", "BLG"], candidate_timeout=20.0
        ).rows
    )
    return rows


def test_table7(report, benchmark):
    rows, rendered = table7(report)
    paper = format_table(
        ["Const.", "Conf.", "Solved", "S. red.", "C. red.", "Sil.", "T(m)"],
        [list(row) for row in PAPER_TABLE7],
        title="Paper Table VII (original logs, for reference)",
    )
    artifact = rendered + "\n\n" + paper
    write_result("table7.txt", artifact)
    print("\n" + artifact)

    by_key = {(row["Const."], row["Conf."]): row for row in rows}

    # GECCO vs graph querying: more comprehensive candidates mean more
    # abstraction at lower model complexity, and no fewer solutions.
    # (The silhouette gap the paper reports (-0.20 for BL_Q) does not
    # reliably materialize on the scaled 10-class logs, where path
    # candidates are near-complete; S.red / C.red dominance does.)
    gecco_q = by_key[("BL[1-3]", "DFG inf")]
    blq = by_key[("BL[1-3]", "BL Q")]
    assert gecco_q["S. red."] >= blq["S. red."] - 0.02
    assert gecco_q["C. red."] >= blq["C. red."] - 0.02
    assert gecco_q["Solved"] >= blq["Solved"] - 1e-9

    # GECCO vs spectral partitioning: same group count, at least as
    # much complexity reduction.
    gecco_p = by_key[("BL4", "Exh")]
    blp = by_key[("BL4", "BL P")]
    assert gecco_p["C. red."] >= blp["C. red."] - 0.03

    # GECCO vs greedy: greedy solves no more problems (it cannot repair
    # an infeasible singleton start), and on the problems *both* solve
    # GECCO's globally optimal selection reaches a distance no worse
    # than hill climbing's (compare on the common subset — the
    # per-approach table averages cover different solved subsets).
    gecco_g = by_key[("A,M,N", "DFG k")]
    blg = by_key[("A,M,N", "BL G")]
    assert blg["Solved"] <= gecco_g["Solved"] + 1e-9
    amn = ("A", "M", "N")
    solved_by = {
        approach: {
            (row.log_name, row.constraint_set)
            for row in report.rows
            if row.approach == approach and row.solved and row.constraint_set in amn
        }
        for approach in ("DFGk", "BLG")
    }
    common = solved_by["DFGk"] & solved_by["BLG"]
    assert common, "expected commonly solved problems"

    def mean_size_red(approach):
        rows_common = [
            row.size_red
            for row in report.rows
            if row.approach == approach
            and (row.log_name, row.constraint_set) in common
            and row.size_red is not None
        ]
        return sum(rows_common) / len(rows_common)

    assert mean_size_red("DFGk") >= mean_size_red("BLG") - 0.05

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_spectral_partitioning(collection, benchmark):
    from repro.baselines.partitioning import spectral_grouping

    log = collection["bpic17"]
    grouping = benchmark(spectral_grouping, log, max(1, len(log.classes) // 2))
    assert len(grouping) == max(1, len(log.classes) // 2)


def test_bench_greedy(collection, benchmark):
    from repro.baselines.greedy import greedy_grouping
    from repro.experiments.configs import constraint_set_for_log

    log = collection["road_fines"]
    constraints = constraint_set_for_log("A", log)
    grouping, _ = benchmark.pedantic(
        greedy_grouping, args=(log, constraints), rounds=2, iterations=1
    )
    assert len(grouping) >= 1
