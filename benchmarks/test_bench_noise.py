"""Extension benchmark: robustness of abstraction under log noise.

Sweeps the noise operators over the running example and a collection
log and reports whether GECCO still solves the problem and how the
achieved distance degrades — quantifying the robustness the paper
implicitly relies on when running on real (noisy) logs.
"""

from conftest import write_result

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
from repro.core.gecco import Gecco, GeccoConfig
from repro.datasets.noise import apply_noise
from repro.eventlog.events import ROLE_KEY
from repro.experiments.configs import constraint_set_for_log
from repro.experiments.tables import format_table

NOISE_LEVELS = (0.0, 0.05, 0.1, 0.2, 0.4)


def _sweep(log, constraints, config):
    rows = []
    for level in NOISE_LEVELS:
        noisy = apply_noise(
            log, swap=level, drop=level / 2, duplicate=level / 2, seed=5
        )
        result = Gecco(constraints, config).abstract(noisy)
        rows.append(
            [
                level,
                "yes" if result.feasible else "no",
                len(result.grouping) if result.feasible else "-",
                round(result.distance, 3) if result.feasible else "-",
            ]
        )
    return rows


def test_noise_robustness_running_example(running_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
    rows = _sweep(running_log, constraints, GeccoConfig(strategy="dfg"))
    rendered = format_table(
        ["noise", "solved", "|G|", "dist"],
        rows,
        title="Noise robustness (running example, role constraint)",
    )
    write_result("noise_running_example.txt", rendered)
    print("\n" + rendered)
    # Moderate noise must not break feasibility.
    assert all(row[1] == "yes" for row in rows[:3])


def test_noise_robustness_collection(collection, benchmark):
    log = collection["road_fines"]
    constraints = constraint_set_for_log("BL1", log)
    config = GeccoConfig(strategy="dfg", beam_width="auto")
    rows = benchmark.pedantic(
        _sweep, args=(log, constraints, config), rounds=1, iterations=1
    )
    rendered = format_table(
        ["noise", "solved", "|G|", "dist"],
        rows,
        title="Noise robustness (road_fines, BL1)",
    )
    write_result("noise_collection.txt", rendered)
    print("\n" + rendered)
    assert rows[0][1] == "yes"
