"""Figures 1 and 8: the loan-application case study (paper §VI-D).

Regenerates both figures on the synthetic loan log: the 80/20 DFG of
the low-level log (Fig. 1 — spaghetti) and the 80/20 DFG after
origin-constrained abstraction (Fig. 8 — system-pure activities with
visible inter-system flow).  DOT artifacts land in benchmarks/results/.
"""

from conftest import write_result

from repro.constraints import (
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroupSize,
)
from repro.core.gecco import Gecco, GeccoConfig
from repro.datasets.loan_process import ORIGIN_OF
from repro.eventlog.dfg import compute_dfg
from repro.experiments.figures import dfg_to_dot


def test_fig1_spaghetti_dfg(loan_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    dfg = compute_dfg(loan_log)
    filtered = dfg.filtered(0.8)
    dot = dfg_to_dot(dfg, keep_fraction=0.8, title="Fig1")
    write_result("fig1_loan_8020_dfg.dot", dot)
    print(
        f"\nFig. 1: loan log 80/20 DFG has {len(filtered.edge_counts)} edges "
        f"over {len(dfg.nodes)} classes (paper: 160 edges over 24 classes)"
    )
    # Spaghetti shape: far more edges than classes even after filtering.
    assert len(filtered.edge_counts) > len(dfg.nodes)


def test_fig8_abstracted_dfg(loan_log, benchmark):
    constraints = ConstraintSet(
        [MaxGroupSize(8), MaxDistinctClassAttribute("origin", 1)]
    )
    config = GeccoConfig(strategy="dfg", beam_width="auto", label_attribute="origin")

    result = benchmark.pedantic(
        Gecco(constraints, config).abstract, args=(loan_log,), rounds=1, iterations=1
    )
    assert result.feasible

    abstracted_dfg = compute_dfg(result.abstracted_log)
    dot = dfg_to_dot(abstracted_dfg, keep_fraction=0.8, title="Fig8")
    write_result("fig8_abstracted_8020_dfg.dot", dot)

    summary = [
        f"Fig. 8: {len(result.grouping)} origin-pure activities "
        f"(paper: 7), abstracted 80/20 DFG has "
        f"{len(abstracted_dfg.filtered(0.8).edge_counts)} edges",
    ]
    for group in sorted(result.grouping, key=lambda g: sorted(g)[0]):
        summary.append(
            f"  {result.grouping.label_of(group):<18} {{{', '.join(sorted(group))}}}"
        )
    text = "\n".join(summary)
    write_result("fig8_grouping.txt", text)
    print("\n" + text)

    # Shape assertions per the paper's discussion.
    assert len(result.grouping) < len(loan_log.classes) / 2
    for group in result.grouping:
        assert len({ORIGIN_OF[cls] for cls in group}) == 1
    original_edges = len(compute_dfg(loan_log).edge_counts)
    assert len(abstracted_dfg.edge_counts) < original_edges


def test_unconstrained_abstraction_mixes_origins(loan_log, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """§VI-D's closing point: without constraints, systems get mixed."""
    result = Gecco(
        ConstraintSet([MaxGroupSize(8)]),
        GeccoConfig(strategy="dfg", beam_width="auto"),
    ).abstract(loan_log)
    assert result.feasible
    mixed = [
        group
        for group in result.grouping
        if len({ORIGIN_OF[cls] for cls in group}) > 1
    ]
    assert mixed, "expected unconstrained abstraction to mix origin systems"
