#!/usr/bin/env python
"""Dual-engine performance runner: tracks the pipeline's perf trajectory.

Runs the scaling and ablation workloads through the full GECCO pipeline
on both engines (``python`` reference and integer-encoded ``compiled``,
see :mod:`repro.core.encoding`) and writes a machine-readable
``benchmarks/results/BENCH_pipeline.json`` with per-step wall-clock
timings (:class:`~repro.core.gecco.StepTimings`), candidate counts, and
python/compiled speedup ratios.  Every run also cross-checks that both
engines produced identical candidates, distances, and groupings.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py            # full sweep
    PYTHONPATH=src python benchmarks/run_perf.py --quick    # CI smoke

The headline number is ``summary.median_speedup_candidates_scaling_classes``
— the median Step-1 (candidate computation) speedup of the compiled
engine over the reference on the ``scaling_classes`` workloads.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.constraints import (  # noqa: E402
    ConstraintSet,
    MaxDistinctClassAttribute,
    MaxGroups,
    MaxGroupSize,
)
from repro.core import encoding  # noqa: E402
from repro.core.checker import GroupChecker  # noqa: E402
from repro.core.dfg_candidates import default_beam_width, dfg_candidates  # noqa: E402
from repro.core.encoding import HAVE_NUMPY  # noqa: E402
from repro.core.exclusive import merge_exclusive_candidates  # noqa: E402
from repro.core.gecco import Gecco, GeccoConfig, prepare_artifacts  # noqa: E402
from repro.core.selection import select_optimal_grouping  # noqa: E402
from repro.datasets import loan_application_log, running_example_log  # noqa: E402
from repro.eventlog.events import ROLE_KEY  # noqa: E402
from repro.selection2 import Component, select_decomposed, solve_component  # noqa: E402
from repro.datasets.attributes import enrich_log  # noqa: E402
from repro.datasets.playout import playout  # noqa: E402
from repro.datasets.process_tree import TreeSpec, random_tree  # noqa: E402
from repro.experiments.configs import constraint_set_for_log  # noqa: E402
from repro.service import (  # noqa: E402
    AbstractionJob,
    LogRef,
    Overloaded,
    SequentialExecutor,
    make_executor,
    result_signature,
)
from repro.service.jobs import share_log_refs  # noqa: E402

ENGINES = ("python", "compiled")

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_pipeline.json"


@dataclass
class Workload:
    """One benchmark problem: a log builder plus a constraint set."""

    name: str
    family: str
    build_log: object
    constraint_set: str
    beam_width: object = "auto"
    params: dict = field(default_factory=dict)

    def make(self):
        log = self.build_log()
        constraints = constraint_set_for_log(self.constraint_set, log)
        return log, constraints


def _synthetic(num_classes: int, num_traces: int, seed: int = 42):
    tree = random_tree(TreeSpec(num_activities=num_classes), seed=seed)
    return enrich_log(playout(tree, num_traces, seed=seed), seed=seed)


def build_workloads(quick: bool) -> list[Workload]:
    class_counts = (6, 10) if quick else (6, 8, 10, 12, 14)
    trace_counts = (25,) if quick else (25, 50, 100, 200)
    workloads = [
        Workload(
            name=f"scaling_classes/{num_classes}",
            family="scaling_classes",
            build_log=lambda n=num_classes: _synthetic(n, 40),
            constraint_set="BL1",
            params={"num_classes": num_classes, "num_traces": 40},
        )
        for num_classes in class_counts
    ]
    workloads += [
        Workload(
            name=f"scaling_traces/{num_traces}",
            family="scaling_traces",
            build_log=lambda n=num_traces: _synthetic(10, n),
            constraint_set="A",
            params={"num_classes": 10, "num_traces": num_traces},
        )
        for num_traces in trace_counts
    ]
    # Ablation-style workloads on the paper's logs.
    workloads.append(
        Workload(
            name="ablation/running_example_BL1",
            family="ablation",
            build_log=running_example_log,
            constraint_set="BL1",
            params={"log": "running_example"},
        )
    )
    if not quick:
        workloads.append(
            Workload(
                name="ablation/loan_BL1",
                family="ablation",
                build_log=lambda: loan_application_log(num_traces=80),
                constraint_set="BL1",
                params={"log": "loan_80"},
            )
        )
        workloads.append(
            Workload(
                name="ablation/loan_BL1_dfginf",
                family="ablation",
                build_log=lambda: loan_application_log(num_traces=40),
                constraint_set="BL1",
                beam_width=None,
                params={"log": "loan_40", "beam": "unlimited"},
            )
        )
    return workloads


def _signature(result):
    """Output fingerprint used to prove engine equivalence."""
    grouping = (
        tuple(sorted(tuple(sorted(group)) for group in result.grouping.groups))
        if result.grouping is not None
        else None
    )
    return (result.feasible, result.num_candidates, result.distance, grouping)


def run_workload(workload: Workload, repeats: int) -> dict:
    record = {
        "name": workload.name,
        "family": workload.family,
        "constraint_set": workload.constraint_set,
        "beam_width": workload.beam_width,
        "params": workload.params,
        "engines": {},
    }
    signatures = {}
    for engine in ENGINES:
        best = None
        best_total = None
        for _ in range(repeats):
            log, constraints = workload.make()
            config = GeccoConfig(
                strategy="dfg", beam_width=workload.beam_width, engine=engine
            )
            result = Gecco(constraints, config).abstract(log)
            if best is None or result.timings.candidates < best.timings.candidates:
                best = result
            if best_total is None or result.timings.total < best_total:
                best_total = result.timings.total
        signatures[engine] = _signature(best)
        record["engines"][engine] = {
            "timings": asdict(best.timings),
            "total_seconds": best_total,
            "num_candidates": best.num_candidates,
            "distance": best.distance,
            "feasible": best.feasible,
        }
    python_candidates = record["engines"]["python"]["timings"]["candidates"]
    compiled_candidates = record["engines"]["compiled"]["timings"]["candidates"]
    record["speedup_candidates"] = (
        python_candidates / compiled_candidates if compiled_candidates > 0 else None
    )
    record["speedup_total"] = (
        record["engines"]["python"]["total_seconds"]
        / record["engines"]["compiled"]["total_seconds"]
        if record["engines"]["compiled"]["total_seconds"] > 0
        else None
    )
    record["outputs_match"] = signatures["python"] == signatures["compiled"]
    return record


def batch_manifest_rows(quick: bool) -> list[dict]:
    """The batch workload: (log × constraint set) jobs in manifest form.

    The full set is the acceptance workload of the service runtime: a
    20-job manifest over the running example and the loan log, several
    class-based and grouping constraint sets each.
    """
    logs = ("running_example",) if quick else ("running_example", "loan:60")
    size_bounds = (3, 5) if quick else (2, 3, 4, 5, 6)
    group_bounds = (3,) if quick else (3, 4, 5, 6, 7)
    rows = []
    for log_spec in logs:
        for bound in size_bounds:
            rows.append(
                {
                    "id": f"{log_spec}/size{bound}",
                    "log": log_spec,
                    "constraints": [{"type": "max_group_size", "bound": bound}],
                    "config": {"beam_width": "auto"},
                }
            )
        for bound in group_bounds:
            rows.append(
                {
                    "id": f"{log_spec}/groups{bound}",
                    "log": log_spec,
                    "constraints": [
                        {"type": "max_group_size", "bound": 8},
                        {"type": "max_groups", "bound": bound},
                    ],
                    "config": {"beam_width": "auto"},
                }
            )
    return rows


def run_batch_benchmark(quick: bool) -> dict:
    """Throughput of the service runtime: 1 vs N workers, cold vs warm.

    Every run is cross-checked against a sequential reference (a fresh
    ``Gecco.abstract`` per job, no artifact sharing): the runtime must
    be byte-identical, merely faster.
    """
    rows = batch_manifest_rows(quick)
    jobs = share_log_refs([AbstractionJob.from_dict(row) for row in rows])
    num_logs = len({job.log.digest() for job in jobs})

    started = time.perf_counter()
    reference = [
        result_signature(Gecco(job.constraints, job.config).abstract(job.log.resolve()))
        for job in jobs
    ]
    sequential_seconds = time.perf_counter() - started

    record = {
        "num_jobs": len(jobs),
        "num_logs": num_logs,
        "sequential_reference_seconds": sequential_seconds,
        "sequential_reference_jobs_per_second": len(jobs) / sequential_seconds,
        "runs": {},
    }
    worker_counts = (1, 2) if quick else (1, 4)
    for workers in worker_counts:
        executor = make_executor(workers=workers)
        try:
            cold_started = time.perf_counter()
            cold_results = executor.map(jobs)
            cold_seconds = time.perf_counter() - cold_started

            warm_started = time.perf_counter()
            warm_results = executor.map(jobs)
            warm_seconds = time.perf_counter() - warm_started
            stats = executor.stats()
        finally:
            executor.shutdown()

        builds = stats["parent"]["artifact_builds"] + stats.get(
            "workers_total", {}
        ).get("artifact_builds", 0)
        run = {
            "cold_seconds": cold_seconds,
            "cold_jobs_per_second": len(jobs) / cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_jobs_per_second": len(jobs) / warm_seconds,
            "warm_speedup": cold_seconds / warm_seconds if warm_seconds > 0 else None,
            "byte_identical_cold": [result_signature(r) for r in cold_results]
            == reference,
            "byte_identical_warm": [result_signature(r) for r in warm_results]
            == reference,
            "artifact_builds": builds,
            # Exactly one build per (worker, log): sequential builds each
            # log's artifacts once; a pool builds them at most once per
            # worker that saw the log.
            "artifacts_built_once_per_log": (
                builds == num_logs
                if workers == 1
                else num_logs <= builds <= workers * num_logs
            ),
            "cache": stats,
        }
        record["runs"][f"workers_{workers}"] = run
        print(
            f"batch workers={workers}: cold={cold_seconds:6.2f}s "
            f"({run['cold_jobs_per_second']:6.2f} jobs/s) "
            f"warm={warm_seconds:6.3f}s ({run['warm_jobs_per_second']:8.2f} jobs/s) "
            f"warm_speedup={run['warm_speedup']:6.1f}x "
            f"identical={run['byte_identical_cold'] and run['byte_identical_warm']} "
            f"builds={builds}/{num_logs} logs"
        )
    return record


def run_dist_benchmark(quick: bool) -> dict:
    """The distributed backend: broker fleets vs the sequential reference.

    Three runs per worker count over a filesystem broker — **cold**
    (fresh fleet, empty store), **warm** (same executor, parent cache),
    and **store-warm** (fresh executor + fresh broker on the same disk
    store, zero workers: everything must come from the fleet's shared
    result tier).  Every run is checked byte-identical to a sequential
    reference, and the cold fleet must converge to at most one artifact
    build per log (affinity routing).
    """
    import tempfile

    rows = batch_manifest_rows(quick)
    jobs = share_log_refs([AbstractionJob.from_dict(row) for row in rows])
    num_logs = len({job.log.digest() for job in jobs})

    started = time.perf_counter()
    reference = [
        result_signature(Gecco(job.constraints, job.config).abstract(job.log.resolve()))
        for job in jobs
    ]
    sequential_seconds = time.perf_counter() - started

    record = {
        "broker": "fs",
        "num_jobs": len(jobs),
        "num_logs": num_logs,
        "sequential_reference_seconds": sequential_seconds,
        "runs": {},
    }
    worker_counts = (1, 2) if quick else (1, 4)
    for workers in worker_counts:
        with tempfile.TemporaryDirectory(prefix="gecco-dist-bench-") as tmp:
            store = Path(tmp) / "store"
            executor = make_executor(
                workers=workers, broker=f"fs://{tmp}/queue", disk_dir=store
            )
            try:
                cold_started = time.perf_counter()
                cold_results = executor.map(jobs)
                cold_seconds = time.perf_counter() - cold_started

                warm_started = time.perf_counter()
                warm_results = executor.map(jobs)
                warm_seconds = time.perf_counter() - warm_started
                stats = executor.stats()
            finally:
                executor.shutdown()

            store_warm = make_executor(
                workers=0, broker=f"fs://{tmp}/queue2", disk_dir=store
            )
            try:
                store_started = time.perf_counter()
                store_results = store_warm.map(jobs)
                store_seconds = time.perf_counter() - store_started
            finally:
                store_warm.shutdown()

        builds = stats.get("workers_total", {}).get("artifact_builds", 0)
        run = {
            "cold_seconds": cold_seconds,
            "cold_jobs_per_second": len(jobs) / cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_jobs_per_second": len(jobs) / warm_seconds,
            "store_warm_seconds": store_seconds,
            "byte_identical_cold": [result_signature(r) for r in cold_results]
            == reference,
            "byte_identical_warm": [result_signature(r) for r in warm_results]
            == reference,
            "byte_identical_store_warm": [
                result_signature(r) for r in store_results
            ]
            == reference,
            "fleet_artifact_builds": builds,
            # Affinity routing: one artifact build per log across the
            # whole fleet, regardless of worker count.
            "one_build_per_log": builds == num_logs,
            "requeues": stats.get("scheduler", {}).get("requeues", 0),
            "cache": stats,
        }
        record["runs"][f"workers_{workers}"] = run
        identical = (
            run["byte_identical_cold"]
            and run["byte_identical_warm"]
            and run["byte_identical_store_warm"]
        )
        print(
            f"dist workers={workers}: cold={cold_seconds:6.2f}s "
            f"({run['cold_jobs_per_second']:6.2f} jobs/s) "
            f"warm={warm_seconds:6.3f}s store_warm={store_seconds:6.3f}s "
            f"identical={identical} builds={builds}/{num_logs} logs"
        )
    return record


def _percentile(values: "list[float]", fraction: float) -> "float | None":
    """Nearest-rank percentile; ``None`` on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def run_resilience_benchmark(quick: bool) -> dict:
    """Admission control under overload: latency and shed behaviour.

    Offers 1x/2x/4x the executor's bounded load, with and without
    admission control.  With a ``max_load`` bound the executor sheds
    the excess as typed ``Overloaded`` and keeps admitted latency
    flat; without the bound everything completes but queueing
    stretches the tail.  Every job that completes is cross-checked
    byte-identical against the sequential reference — resilience
    decides *whether* a job runs, never *what it computes*.
    """
    workers = 2
    base_load = 4 if quick else 6
    log_ref = LogRef.builtin("running_example")

    combos = [[MaxGroupSize(bound)] for bound in range(2, 10)]
    combos += [[MaxGroups(bound)] for bound in range(2, 10)]
    combos += [
        [MaxGroupSize(size), MaxGroups(groups)]
        for size in range(3, 7)
        for groups in range(3, 7)
    ]
    # Distinct constraint sets -> distinct fingerprints, so submissions
    # are never coalesced away and the offered load is real.
    all_jobs = [
        AbstractionJob(
            log=log_ref,
            constraints=ConstraintSet(combo),
            job_id=f"overload-{index}",
        )
        for index, combo in enumerate(combos[: base_load * 4])
    ]
    sequential = SequentialExecutor()
    reference = {
        job.fingerprint().full: result_signature(sequential.submit(job).result())
        for job in all_jobs
    }

    record = {"workers": workers, "max_load": base_load, "runs": {}}
    matched = True
    for multiplier in (1, 2, 4):
        offered = all_jobs[: base_load * multiplier]
        cell = {}
        for label, max_load in (
            ("with_admission", base_load),
            ("without_admission", None),
        ):
            executor = make_executor(workers=workers, max_load=max_load)
            latencies: "list[float]" = []
            shed = 0
            started = time.perf_counter()
            try:
                handles = [(job, executor.submit(job)) for job in offered]
                for job, handle in handles:
                    try:
                        result = handle.result()
                    except Overloaded:
                        shed += 1
                        continue
                    latencies.append(time.perf_counter() - started)
                    if result_signature(result) != reference[job.fingerprint().full]:
                        matched = False
            finally:
                executor.shutdown()
            cell[label] = {
                "offered": len(offered),
                "completed": len(latencies),
                "shed": shed,
                "shed_rate": shed / len(offered),
                "p50_latency_seconds": _percentile(latencies, 0.50),
                "p99_latency_seconds": _percentile(latencies, 0.99),
            }
            print(
                f"resilience {multiplier}x {label:18s}: "
                f"offered={len(offered):3d} completed={len(latencies):3d} "
                f"shed={shed:3d} "
                f"p50={(cell[label]['p50_latency_seconds'] or 0.0):6.3f}s "
                f"p99={(cell[label]['p99_latency_seconds'] or 0.0):6.3f}s"
            )
        record["runs"][f"overload_{multiplier}x"] = cell
    record["outputs_match"] = matched
    return record


def run_observability_benchmark(quick: bool) -> dict:
    """Tracing overhead: the `--trace` path must stay observational.

    Runs the same job set through fresh sequential executors with
    tracing off and on (JSONL writer appending to a real file) and
    compares paired wall clocks plus result signatures.  The
    contract this holds the runtime to: byte-identical outputs and
    single-digit-percent overhead — tracing is one ``os.write`` per
    lifecycle transition, never a second code path.
    """
    import tempfile

    from repro.obs import TraceWriter, read_trace
    from repro.service.cache import ArtifactCache

    # The synthetic log gives run times stable enough (~±2%) to
    # resolve a low-single-digit overhead; the loan logs vary ±10%
    # run to run under identical work, which swamps the signal.
    log_ref = LogRef.builtin("synthetic:8x150@1")
    combos = [[MaxGroupSize(bound)] for bound in range(2, 8)]
    combos += [[MaxGroups(bound)] for bound in range(4, 10)]
    jobs = [
        AbstractionJob(
            log=log_ref,
            constraints=ConstraintSet(combo),
            job_id=f"obs-{index}",
        )
        for index, combo in enumerate(combos)
    ]
    repeats = 4 if quick else 8

    def run_once(tracer) -> "tuple[float, list[str]]":
        # A fresh cache per run: identical work on both arms, no
        # cross-run warm hits to flatter either side.
        executor = SequentialExecutor(cache=ArtifactCache(), tracer=tracer)
        started = time.perf_counter()
        signatures = [
            result_signature(executor.submit(job).result()) for job in jobs
        ]
        return time.perf_counter() - started, signatures

    plain_times: "list[float]" = []
    traced_times: "list[float]" = []
    ratios: "list[float]" = []
    _, reference = run_once(None)  # untimed warmup (imports, allocator)
    matched = True
    trace_events = 0
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            trace_path = Path(tmp) / f"trace-{repeat}.jsonl"
            # Each repeat is one back-to-back plain/traced pair, so
            # the ratio cancels slow drift; the pair's order alternates
            # so run-ordering effects (page cache, allocator growth)
            # cannot systematically flatter either arm.  The reported
            # overhead is the median of the per-pair ratios.
            arms = ["plain", "traced"] if repeat % 2 == 0 else ["traced", "plain"]
            for arm in arms:
                if arm == "plain":
                    seconds, signatures = run_once(None)
                    plain_times.append(seconds)
                else:
                    with TraceWriter(trace_path) as tracer:
                        seconds, signatures = run_once(tracer)
                    traced_times.append(seconds)
                    trace_events = len(read_trace(trace_path))
                if signatures != reference:
                    matched = False
            ratios.append(traced_times[-1] / plain_times[-1])
    plain_median = statistics.median(plain_times)
    traced_median = statistics.median(traced_times)
    overhead = statistics.median(ratios) - 1.0
    record = {
        "jobs": len(jobs),
        "repeats": repeats,
        "plain_seconds": plain_median,
        "traced_seconds": traced_median,
        "overhead_fraction": overhead,
        "trace_events_per_run": trace_events,
        "outputs_match": matched,
    }
    print(
        f"observability: {len(jobs)} jobs plain={plain_median:6.3f}s "
        f"traced={traced_median:6.3f}s overhead={overhead * 100:+5.2f}% "
        f"events={trace_events} match={matched}"
    )
    return record


def run_durability_benchmark(quick: bool) -> dict:
    """Journal overhead and resume payoff: `--run-dir` must be cheap.

    Runs the same manifest through ``run_batch`` plain and journalled
    (one line-atomic ``O_APPEND`` write per finished row) in
    alternating pairs and reports the median paired overhead, which
    the durability contract keeps in the low single digits.  Then the
    resume path: re-running a completed run directory with
    ``resume=True`` must replay every row *verbatim* — byte-identical
    rows, zero recomputation — which is what makes crash recovery
    effectively free.
    """
    import tempfile

    from repro.service import run_batch

    log_ref = LogRef.builtin("synthetic:8x150@1")
    combos = [[MaxGroupSize(bound)] for bound in range(2, 8)]
    combos += [[MaxGroups(bound)] for bound in range(4, 10)]
    jobs = [
        AbstractionJob(
            log=log_ref,
            constraints=ConstraintSet(combo),
            job_id=f"dur-{index}",
        )
        for index, combo in enumerate(combos)
    ]
    # More pairs than the tracing benchmark: these runs are ~2x
    # shorter, so the paired-ratio estimator needs more samples to
    # resolve a low-single-digit overhead.  Still < 4s in quick mode.
    repeats = 8 if quick else 16

    def masked(rows: "list[dict]") -> "list[dict]":
        return [
            {k: v for k, v in row.items()
             if k not in ("cached", "seconds", "selection")}
            for row in rows
        ]

    def run_once(run_dir=None, resume: bool = False):
        started = time.perf_counter()
        report = run_batch(jobs, run_dir=run_dir, resume=resume)
        return time.perf_counter() - started, report

    _, warm = run_once()  # untimed warmup (imports, allocator)
    reference = masked(warm.rows)
    plain_times: "list[float]" = []
    durable_times: "list[float]" = []
    ratios: "list[float]" = []
    matched = True
    durable_rows: "list[dict]" = []
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            # Back-to-back alternating pairs, same discipline as the
            # tracing benchmark: the paired ratio cancels slow drift.
            arms = ["plain", "durable"] if repeat % 2 == 0 else ["durable", "plain"]
            for arm in arms:
                if arm == "plain":
                    seconds, report = run_once()
                    plain_times.append(seconds)
                else:
                    seconds, report = run_once(Path(tmp) / f"run-{repeat}")
                    durable_times.append(seconds)
                    durable_rows = report.rows
                if masked(report.rows) != reference:
                    matched = False
            ratios.append(durable_times[-1] / plain_times[-1])
        # Resume the last journalled run: everything replays verbatim.
        last_dir = Path(tmp) / f"run-{repeats - 1}"
        resume_seconds, resumed = run_once(last_dir, resume=True)
        replayed = resumed.journal["replayed"]
        recomputed = resumed.journal["computed"]
        if resumed.rows != durable_rows or recomputed:
            matched = False
    plain_median = statistics.median(plain_times)
    durable_median = statistics.median(durable_times)
    overhead = statistics.median(ratios) - 1.0
    cold_seconds = durable_times[-1]
    record = {
        "jobs": len(jobs),
        "repeats": repeats,
        "plain_seconds": plain_median,
        "durable_seconds": durable_median,
        "overhead_fraction": overhead,
        "cold_seconds": cold_seconds,
        "resume_seconds": resume_seconds,
        "resume_speedup": (
            cold_seconds / resume_seconds if resume_seconds > 0 else None
        ),
        "replayed": replayed,
        "recomputed": recomputed,
        "outputs_match": matched,
    }
    print(
        f"durability: {len(jobs)} jobs plain={plain_median:6.3f}s "
        f"journalled={durable_median:6.3f}s overhead={overhead * 100:+5.2f}% "
        f"resume={resume_seconds:6.3f}s ({replayed} replayed, "
        f"{recomputed} recomputed) match={matched}"
    )
    return record


def run_attribute_benchmark(quick: bool) -> dict:
    """Instance-constraint checking: columnar kernels vs event walks.

    The workload is the access pattern of Step 1 under the paper's
    instance-based sets (A = role-distinct, M/N = duration aggregates,
    C2 = all three): every group of a DFGk-like population is checked
    against the set, python engine vs compiled columns.  Verdicts must
    match exactly; the record tracks the checking-time speedup.
    """
    import itertools

    from repro.core.encoding import CompiledInstanceIndex
    from repro.core.instances import InstanceIndex

    sizes = (50,) if quick else (100, 200)
    set_names = ("A", "M") if quick else ("A", "M", "N", "C2")
    cells = []
    mismatched = []
    for num_traces in sizes:
        log = _synthetic(10, num_traces)
        classes = sorted(log.classes)
        groups = [
            frozenset(combo)
            for size in (1, 2, 3)
            for combo in itertools.combinations(classes, size)
        ]
        for set_name in set_names:
            constraints = constraint_set_for_log(set_name, log)
            timings = {}
            verdicts = {}
            for engine in ENGINES:
                if engine == "compiled":
                    index = CompiledInstanceIndex(log)
                    index.prime(groups)  # pipeline state: spans pre-extracted
                else:
                    index = InstanceIndex(log)
                checker = GroupChecker(log, constraints, index)
                started = time.perf_counter()
                verdicts[engine] = [checker.holds(group) for group in groups]
                timings[engine] = time.perf_counter() - started
            if verdicts["python"] != verdicts["compiled"]:
                mismatched.append(f"traces{num_traces}/{set_name}")
            cell = {
                "name": f"scaling_traces/{num_traces}/{set_name}",
                "num_groups": len(groups),
                "python_seconds": timings["python"],
                "compiled_seconds": timings["compiled"],
                "speedup": (
                    timings["python"] / timings["compiled"]
                    if timings["compiled"] > 0
                    else None
                ),
            }
            cells.append(cell)
            rendered = (
                f"{cell['speedup']:5.2f}x" if cell["speedup"] is not None else "  n/a"
            )
            print(
                f"attributes {cell['name']:28s} python={timings['python'] * 1e3:8.2f}ms "
                f"compiled={timings['compiled'] * 1e3:8.2f}ms "
                f"speedup={rendered}"
            )
    speedups = [cell["speedup"] for cell in cells if cell["speedup"]]
    return {
        "cells": cells,
        "median_speedup": statistics.median(speedups) if speedups else None,
        "outputs_match": not mismatched,
        "mismatched_cells": mismatched,
    }


def run_abstraction_benchmark(quick: bool) -> dict:
    """Step-3 abstraction: compiled instance spans vs the reference walk.

    Abstracts the largest scaling workload under both strategies with a
    warm instance index (the pipeline state after Step 1), python vs
    compiled, asserting byte-identical abstracted logs.
    """
    from repro.core.abstraction import STRATEGIES, abstract_log
    from repro.core.encoding import CompiledInstanceIndex
    from repro.core.instances import InstanceIndex

    num_traces = 50 if quick else 200
    log = _synthetic(10, num_traces)
    constraints = constraint_set_for_log("BL1", log)
    grouping = Gecco(constraints, GeccoConfig(beam_width="auto")).abstract(log).grouping
    repeats = 1 if quick else 5
    cells = []
    mismatched = []
    for strategy in STRATEGIES:
        timings = {}
        outputs = {}
        for engine in ENGINES:
            index = (
                CompiledInstanceIndex(log)
                if engine == "compiled"
                else InstanceIndex(log)
            )
            abstract_log(log, grouping, index, strategy=strategy)  # warm
            best = None
            for _ in range(repeats):
                started = time.perf_counter()
                outputs[engine] = abstract_log(
                    log, grouping, index, strategy=strategy
                )
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            timings[engine] = best
        identical = all(
            ref_trace.attributes == com_trace.attributes
            and list(ref_trace) == list(com_trace)
            for ref_trace, com_trace in zip(
                outputs["python"], outputs["compiled"]
            )
        )
        if not identical:
            mismatched.append(strategy)
        cell = {
            "name": f"scaling_traces/{num_traces}/{strategy}",
            "python_seconds": timings["python"],
            "compiled_seconds": timings["compiled"],
            "speedup": (
                timings["python"] / timings["compiled"]
                if timings["compiled"] > 0
                else None
            ),
        }
        cells.append(cell)
        rendered = (
            f"{cell['speedup']:5.2f}x" if cell["speedup"] is not None else "  n/a"
        )
        print(
            f"abstraction {cell['name']:32s} python={timings['python'] * 1e3:7.2f}ms "
            f"compiled={timings['compiled'] * 1e3:7.2f}ms "
            f"speedup={rendered} identical={identical}"
        )
    speedups = [cell["speedup"] for cell in cells if cell["speedup"]]
    return {
        "largest_workload": f"scaling_traces/{num_traces}",
        "cells": cells,
        "median_speedup": statistics.median(speedups) if speedups else None,
        "outputs_match": not mismatched,
        "mismatched_cells": mismatched,
    }


def _step2_problem(log, constraints):
    """Build one Step-2 instance: the candidate set and distance of a log."""
    config = GeccoConfig(strategy="dfg", beam_width="auto")
    artifacts = prepare_artifacts(log, config)
    checker = GroupChecker(log, constraints, artifacts.instance_index)
    distance = encoding.CompiledDistanceFunction(log, artifacts.instance_index)
    result = dfg_candidates(
        log,
        constraints,
        beam_width=default_beam_width(log),
        checker=checker,
        distance=distance,
        dfg=artifacts.dfg,
        compiled=artifacts.compiled,
    )
    candidates, _stats = merge_exclusive_candidates(
        log, set(result.groups), checker, artifacts.dfg, compiled=artifacts.compiled
    )
    return candidates, distance


def _dense_component(num_classes: int, num_candidates: int, seed: int) -> Component:
    """A dense set-partitioning component that triggers the auto-mode race.

    Singletons guarantee feasibility; the rest are random 2–4-class
    groups with half-integer costs (float-exact ties), the shape whose
    candidate count routes ``auto`` mode past the branch-and-bound cap.
    """
    rng = random.Random(seed)
    classes = [f"c{i:02d}" for i in range(num_classes)]
    candidates = [frozenset([cls]) for cls in classes]
    seen = set(candidates)
    while len(candidates) < num_candidates:
        group = frozenset(rng.sample(classes, rng.randint(2, 4)))
        if group not in seen:
            seen.add(group)
            candidates.append(group)
    costs = [round(rng.uniform(1.0, 6.0) * 2) / 2.0 for _ in candidates]
    return Component(
        classes=tuple(classes), candidates=tuple(candidates), costs=tuple(costs)
    )


def run_racing_benchmark(quick: bool) -> dict:
    """True-parallel racing vs the sequential auto policy.

    Each cell is a dense component whose candidate count sends ``auto``
    mode to HiGHS when racing is off (``race=False`` reproduces the old
    sequential policy exactly); with racing on, the cancellable
    branch-and-bound runs against HiGHS in true parallel and the first
    usable finisher decides.  Groupings must be byte-identical — the
    deterministic winner rule guarantees it, this cross-checks it.
    """
    shapes = [(12, 120, 7), (13, 140, 2)] if quick else [
        (12, 120, 7),
        (13, 140, 2),
        (14, 160, 7),
    ]
    repeats = 2 if quick else 3
    totals = {"race_off": 0.0, "race_on": 0.0}
    cells = []
    mismatched = []
    for num_classes, num_candidates, seed in shapes:
        component = _dense_component(num_classes, num_candidates, seed)
        best = {}
        solutions = {}
        for label, race in (("race_off", False), ("race_on", True)):
            for _ in range(repeats):
                started = time.perf_counter()
                solution = solve_component(component, backend="auto", race=race)
                elapsed = time.perf_counter() - started
                if label not in best or elapsed < best[label]:
                    best[label] = elapsed
                    solutions[label] = solution
            totals[label] += best[label]
        signatures = {
            label: tuple(sorted(tuple(sorted(group)) for group in solution.groups))
            for label, solution in solutions.items()
        }
        name = f"dense/{num_classes}x{num_candidates}"
        if signatures["race_off"] != signatures["race_on"]:
            mismatched.append(name)
        raced = solutions["race_on"]
        cell = {
            "name": name,
            "race_off_seconds": best["race_off"],
            "race_on_seconds": best["race_on"],
            "speedup": (
                best["race_off"] / best["race_on"] if best["race_on"] > 0 else None
            ),
            "race_winner": raced.race_winner,
            "nodes": raced.nodes,
            "lp_bound_cuts": raced.lp_cuts,
        }
        cells.append(cell)
        print(
            f"racing    {name:32s} off={best['race_off'] * 1e3:7.1f}ms "
            f"on={best['race_on'] * 1e3:7.1f}ms "
            f"speedup={cell['speedup']:5.2f}x winner={raced.race_winner} "
            f"nodes={raced.nodes}"
        )
    return {
        "cells": cells,
        "totals_seconds": totals,
        "speedup": (
            totals["race_off"] / totals["race_on"] if totals["race_on"] > 0 else None
        ),
        "outputs_match": not mismatched,
        "mismatched_cells": mismatched,
    }


def run_frontier_benchmark(quick: bool) -> dict:
    """Frontier-batched constraint checking vs per-group dispatch.

    Times Step 1's exhaustive walk under the paper's instance-based
    sets with ``GroupChecker.check_level`` batching each search level
    into one stacked segment reduction per kernel, against a shim that
    replays the old one-``holds``-call-per-group loop on the same
    compiled engine.  Candidate sets must be identical.
    """
    from repro.core.candidates import exhaustive_candidates
    from repro.core.encoding import CompiledInstanceIndex

    grid = [(60, "A")] if quick else [(100, "A"), (100, "M"), (300, "A"), (300, "M")]
    repeats = 1 if quick else 3
    totals = {"sequential": 0.0, "batched": 0.0}
    cells = []
    mismatched = []
    for num_traces, set_name in grid:
        log = _synthetic(10, num_traces)
        constraints = constraint_set_for_log(set_name, log)
        artifacts = prepare_artifacts(log, GeccoConfig(strategy="dfg"))
        timings = {}
        groups = {}
        for variant in ("sequential", "batched"):
            for _ in range(repeats):
                checker = GroupChecker(
                    log, constraints, CompiledInstanceIndex(log, artifacts.compiled)
                )
                if variant == "sequential":
                    checker.check_level = lambda entries, _c=checker: [
                        _c.holds_given_satisfying_subset(group)
                        if pruned
                        else _c.holds(group)
                        for group, pruned in entries
                    ]
                started = time.perf_counter()
                result = exhaustive_candidates(
                    log, constraints, checker=checker, compiled=artifacts.compiled
                )
                elapsed = time.perf_counter() - started
                if variant not in timings or elapsed < timings[variant]:
                    timings[variant] = elapsed
                groups[variant] = result.groups
            totals[variant] += timings[variant]
        name = f"scaling_traces/{num_traces}/{set_name}"
        if groups["sequential"] != groups["batched"]:
            mismatched.append(name)
        cell = {
            "name": name,
            "num_candidates": len(groups["batched"]),
            "sequential_seconds": timings["sequential"],
            "batched_seconds": timings["batched"],
            "speedup": (
                timings["sequential"] / timings["batched"]
                if timings["batched"] > 0
                else None
            ),
        }
        cells.append(cell)
        print(
            f"frontier  {name:32s} seq={timings['sequential'] * 1e3:7.1f}ms "
            f"batched={timings['batched'] * 1e3:7.1f}ms "
            f"speedup={cell['speedup']:5.2f}x "
            f"candidates={cell['num_candidates']}"
        )
    return {
        "cells": cells,
        "totals_seconds": totals,
        "speedup": (
            totals["sequential"] / totals["batched"]
            if totals["batched"] > 0
            else None
        ),
        "outputs_match": not mismatched,
        "mismatched_cells": mismatched,
    }


def run_selection_benchmark(quick: bool, workers: int = 4) -> dict:
    """Step-2 timings: monolithic vs decomposed, sequential vs pooled.

    The workload is a constraint-set *sweep* on the ``scaling_classes``
    grid: per log, the candidate phase runs once, then ``max_groups``
    bounds are swept over the same candidate set — the access pattern
    the selection-artifact cache is built for.  Two constraint bases
    per log: ``BL1`` (typically one overlap component; the decomposed
    win comes from presolve + the bnb portfolio) and a role-clustered
    base (multiple components; adds Eq. 5 coordination, parallel
    component solving, and cross-bound cache reuse).  Every decomposed
    cell is cross-checked against the monolithic grouping.
    """
    from repro.service import ArtifactCache, PoolExecutor

    sizes = (6, 10) if quick else (6, 8, 10, 12, 14)
    bounds = (3, 4) if quick else (3, 4, 5, 6, 7)
    grids = []
    for num_classes in sizes:
        log = _synthetic(num_classes, 40)
        grids.append(
            (
                f"scaling_classes/{num_classes}/BL1",
                log,
                ConstraintSet([MaxGroupSize(8), MaxGroupSize(5)]),
            )
        )
        grids.append(
            (
                f"scaling_classes/{num_classes}/role",
                log,
                ConstraintSet(
                    [MaxGroupSize(8), MaxDistinctClassAttribute(ROLE_KEY, 1)]
                ),
            )
        )

    modes = {
        "monolithic": None,
        "decomposed_seq": {"backend": "scipy"},
        "decomposed_auto": {"backend": "auto"},
        "decomposed_pool": {"backend": "auto", "pooled": True},
    }
    totals = {mode: 0.0 for mode in modes}
    counters = {
        mode: {"nodes": 0, "lp_bound_cuts": 0, "races": 0} for mode in modes
    }
    race_winner_totals: dict[str, int] = {}
    cells = []
    mismatched = []
    pool = PoolExecutor(workers=workers)
    caches = {mode: ArtifactCache() for mode in modes if mode != "monolithic"}
    try:
        for name, log, base in grids:
            candidates, distance = _step2_problem(log, base)
            cell = {
                "name": name,
                "num_candidates": len(candidates),
                "bounds": list(bounds),
                "modes": {},
            }
            reference = {}
            for mode, options in modes.items():
                elapsed = 0.0
                components = None
                cell_counters = {"nodes": 0, "lp_bound_cuts": 0, "races": 0}
                for bound in bounds:
                    started = time.perf_counter()
                    if options is None:
                        outcome = select_optimal_grouping(
                            log, candidates, distance, max_groups=bound
                        )
                        cell_counters["nodes"] += outcome.nodes
                        cell_counters["lp_bound_cuts"] += outcome.lp_cuts
                    else:
                        outcome = select_decomposed(
                            log,
                            candidates,
                            distance,
                            max_groups=bound,
                            backend=options["backend"],
                            cache=caches[mode],
                            executor=pool if options.get("pooled") else None,
                        )
                        components = outcome.stats.num_components
                        cell_counters["nodes"] += outcome.stats.nodes
                        cell_counters["lp_bound_cuts"] += outcome.stats.lp_bound_cuts
                        cell_counters["races"] += outcome.stats.races
                        for winner, count in outcome.stats.race_winner.items():
                            race_winner_totals[winner] = (
                                race_winner_totals.get(winner, 0) + count
                            )
                    elapsed += time.perf_counter() - started
                    key = (name, bound)
                    signature = (
                        outcome.feasible,
                        None
                        if outcome.grouping is None
                        else tuple(
                            sorted(
                                tuple(sorted(group))
                                for group in outcome.grouping.groups
                            )
                        ),
                    )
                    if options is None:
                        reference[key] = signature
                    elif reference[key] != signature:
                        mismatched.append(f"{name}/max{bound}/{mode}")
                totals[mode] += elapsed
                for key, value in cell_counters.items():
                    counters[mode][key] += value
                cell["modes"][mode] = {"seconds": elapsed, **cell_counters}
                if components is not None:
                    cell["modes"][mode]["components"] = components
            cells.append(cell)
            print(
                f"selection {name:32s} mono={cell['modes']['monolithic']['seconds'] * 1e3:7.1f}ms "
                f"dec={cell['modes']['decomposed_seq']['seconds'] * 1e3:7.1f}ms "
                f"auto={cell['modes']['decomposed_auto']['seconds'] * 1e3:7.1f}ms "
                f"pool={cell['modes']['decomposed_pool']['seconds'] * 1e3:7.1f}ms "
                f"components={cell['modes']['decomposed_auto'].get('components')}"
            )
    finally:
        pool.shutdown()

    racing = run_racing_benchmark(quick)
    frontier = run_frontier_benchmark(quick)
    mismatched += [f"racing/{cell}" for cell in racing["mismatched_cells"]]
    mismatched += [f"frontier/{cell}" for cell in frontier["mismatched_cells"]]

    def speedup(mode):
        return totals["monolithic"] / totals[mode] if totals[mode] > 0 else None

    return {
        "workers_pooled": workers,
        "bounds_sweep": list(bounds),
        "cells": cells,
        "totals_seconds": totals,
        "solver_counters": counters,
        "race_winner": race_winner_totals,
        "speedup_decomposed_seq": speedup("decomposed_seq"),
        "speedup_decomposed_auto": speedup("decomposed_auto"),
        "speedup_decomposed_pool": speedup("decomposed_pool"),
        "racing": racing,
        "frontier": frontier,
        "outputs_match": not mismatched,
        "mismatched_cells": mismatched,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small CI-smoke workload set"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path"
    )
    args = parser.parse_args(argv)

    if not HAVE_NUMPY:
        print("numpy unavailable: compiled engine cannot run", file=sys.stderr)
        return 1

    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 5)
    if repeats < 1:
        parser.error(f"--repeats must be >= 1, got {repeats}")
    workloads = build_workloads(args.quick)
    records = []
    for workload in workloads:
        started = time.perf_counter()
        record = run_workload(workload, repeats)
        elapsed = time.perf_counter() - started
        records.append(record)
        speedup = record["speedup_candidates"]
        rendered = f"{speedup:5.2f}x" if speedup is not None else "  n/a"
        print(
            f"{workload.name:32s} step1 python="
            f"{record['engines']['python']['timings']['candidates'] * 1e3:8.2f}ms "
            f"compiled={record['engines']['compiled']['timings']['candidates'] * 1e3:8.2f}ms "
            f"speedup={rendered} match={record['outputs_match']} "
            f"({elapsed:.1f}s)"
        )

    attribute_record = run_attribute_benchmark(args.quick)
    abstraction_record = run_abstraction_benchmark(args.quick)
    batch_record = run_batch_benchmark(args.quick)
    dist_record = run_dist_benchmark(args.quick)
    selection_record = run_selection_benchmark(args.quick)
    resilience_record = run_resilience_benchmark(args.quick)
    observability_record = run_observability_benchmark(args.quick)
    durability_record = run_durability_benchmark(args.quick)

    scaling_speedups = [
        r["speedup_candidates"]
        for r in records
        if r["family"] == "scaling_classes" and r["speedup_candidates"]
    ]
    all_speedups = [r["speedup_candidates"] for r in records if r["speedup_candidates"]]
    mismatches = [r["name"] for r in records if not r["outputs_match"]]
    mismatches += [
        f"batch/{name}"
        for name, run in batch_record["runs"].items()
        if not (run["byte_identical_cold"] and run["byte_identical_warm"])
    ]
    mismatches += [
        f"dist/{name}"
        for name, run in dist_record["runs"].items()
        if not (
            run["byte_identical_cold"]
            and run["byte_identical_warm"]
            and run["byte_identical_store_warm"]
        )
    ]
    mismatches += [f"selection/{cell}" for cell in selection_record["mismatched_cells"]]
    mismatches += [f"attributes/{cell}" for cell in attribute_record["mismatched_cells"]]
    mismatches += [
        f"abstraction/{cell}" for cell in abstraction_record["mismatched_cells"]
    ]
    if not resilience_record["outputs_match"]:
        mismatches.append("resilience/completed-jobs")
    if not observability_record["outputs_match"]:
        mismatches.append("observability/traced-run")
    if not durability_record["outputs_match"]:
        mismatches.append("durability/journalled-run")
    report = {
        "schema": "gecco-perf/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": args.quick,
        "repeats": repeats,
        "workloads": records,
        "attributes": attribute_record,
        "abstraction": abstraction_record,
        "batch": batch_record,
        "dist": dist_record,
        "selection": selection_record,
        "resilience": resilience_record,
        "observability": observability_record,
        "durability": durability_record,
        "summary": {
            "median_speedup_candidates_scaling_classes": (
                statistics.median(scaling_speedups) if scaling_speedups else None
            ),
            "median_speedup_candidates_all": (
                statistics.median(all_speedups) if all_speedups else None
            ),
            "median_speedup_attribute_checking": attribute_record[
                "median_speedup"
            ],
            "median_speedup_abstraction": abstraction_record["median_speedup"],
            "median_speedup_total_scaling_traces": (
                statistics.median(
                    r["speedup_total"]
                    for r in records
                    if r["family"] == "scaling_traces" and r["speedup_total"]
                )
                if any(r["family"] == "scaling_traces" for r in records)
                else None
            ),
            # The scaling claim: end-to-end ratio on the largest
            # scaling_traces workload (constraint set A), where the
            # engine-independent Step-2 share is smallest.
            "speedup_total_scaling_traces_largest": max(
                (
                    r["speedup_total"]
                    for r in records
                    if r["family"] == "scaling_traces" and r["speedup_total"]
                ),
                default=None,
            ),
            "batch_warm_speedup": max(
                (run["warm_speedup"] or 0.0)
                for run in batch_record["runs"].values()
            ),
            "dist_one_build_per_log": all(
                run["one_build_per_log"] for run in dist_record["runs"].values()
            ),
            "selection_speedup_decomposed_pool": selection_record[
                "speedup_decomposed_pool"
            ],
            "selection_speedup_racing": selection_record["racing"]["speedup"],
            "selection_speedup_frontier": selection_record["frontier"]["speedup"],
            "resilience_shed_rate_4x_with_admission": resilience_record["runs"][
                "overload_4x"
            ]["with_admission"]["shed_rate"],
            "observability_overhead_fraction": observability_record[
                "overhead_fraction"
            ],
            "durability_overhead_fraction": durability_record[
                "overhead_fraction"
            ],
            "durability_resume_speedup": durability_record["resume_speedup"],
            "outputs_match": not mismatches,
            "mismatched_workloads": mismatches,
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    median = report["summary"]["median_speedup_candidates_scaling_classes"]
    print(
        "\nmedian step-1 speedup (scaling_classes): "
        + (f"{median:.2f}x" if median is not None else "n/a")
    )
    print(f"report written to {args.output}")
    if mismatches:
        print(f"ENGINE MISMATCH on: {', '.join(mismatches)}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
